#include "sim/value_store.h"

#include "sim/comparators.h"
#include "sim/evidence.h"
#include "strsim/phonetic.h"
#include "util/string_util.h"

namespace recon {

namespace {

int64_t StringBytes(const std::string& s) {
  return static_cast<int64_t>(sizeof(std::string) + s.capacity());
}

int64_t StringVectorBytes(const std::vector<std::string>& v) {
  int64_t bytes = static_cast<int64_t>(v.capacity() * sizeof(std::string));
  for (const auto& s : v) bytes += static_cast<int64_t>(s.capacity());
  return bytes;
}

}  // namespace

int64_t ValueFeatures::ApproximateBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(ValueFeatures));
  bytes += StringBytes(lower) + StringBytes(soundex);
  bytes += StringBytes(ngrams.padded) +
           static_cast<int64_t>(ngrams.grams.capacity() *
                                sizeof(std::pair<uint64_t, uint32_t>));
  bytes += static_cast<int64_t>(name.given.capacity() * sizeof(strsim::GivenName));
  for (const auto& g : name.given) bytes += static_cast<int64_t>(g.text.capacity());
  bytes += StringBytes(name.last);
  bytes += StringBytes(email.account) + StringBytes(email.server);
  bytes += StringBytes(title.normalized) + StringVectorBytes(title.tokens);
  bytes += static_cast<int64_t>(tfidf.entries.capacity() *
                                sizeof(std::pair<int, double>));
  bytes += StringBytes(venue.lower) + StringBytes(venue.content) +
           StringBytes(venue.acronym) + StringVectorBytes(venue.tokens) +
           StringVectorBytes(venue.raw_content) +
           StringVectorBytes(venue.expanded);
  bytes += StringBytes(year.trimmed);
  bytes += StringBytes(pages.trimmed);
  bytes += StringBytes(location.lower) + StringVectorBytes(location.tokens);
  return bytes;
}

ValueFeatures AnalyzeValue(const std::string& raw, FeatureKind kind) {
  ValueFeatures f;
  f.kind = kind;
  f.lower = ToLower(raw);
  f.ngrams = strsim::BuildNgramSet(raw, 3);
  switch (kind) {
    case FeatureKind::kPersonName:
      f.name = strsim::ParsePersonName(raw);
      f.soundex =
          strsim::Soundex(f.name.last.empty() ? f.lower : f.name.last);
      return f;
    case FeatureKind::kEmail:
      f.email = strsim::ParseEmail(raw);
      break;
    case FeatureKind::kTitle:
      f.title = strsim::AnalyzeTitle(raw);
      // Prefilter signatures (DESIGN.md §16): trigrams over the SAME
      // normalized form the edit half of TitleSimilarity compares, and
      // the distinct tokens its Jaccard half compares. The gram set is
      // only needed for its hashes, so it is not retained.
      f.title_gram_sig = strsim::GramSignature(
          strsim::BuildNgramSet(f.title.normalized, 3));
      f.title_token_sig = strsim::TokenSignature(f.title.tokens);
      f.title_norm_len = static_cast<uint32_t>(f.title.normalized.size());
      break;
    case FeatureKind::kVenueName:
      f.venue = strsim::AnalyzeVenueName(raw);
      break;
    case FeatureKind::kYear:
      f.year = strsim::AnalyzeYear(raw);
      break;
    case FeatureKind::kPages:
      f.pages = strsim::AnalyzePages(raw);
      break;
    case FeatureKind::kLocation:
      f.location = strsim::AnalyzeLocation(raw);
      break;
    case FeatureKind::kGeneric:
      break;
  }
  f.soundex = strsim::Soundex(f.lower);
  return f;
}

void ValueStore::Sync(const ValuePool& pool) {
  const size_t target = static_cast<size_t>(pool.size());
  if (features_.size() >= target) return;
  features_.reserve(target);
  for (ValueId id = static_cast<ValueId>(features_.size());
       id < static_cast<ValueId>(target); ++id) {
    const FeatureKind kind = schema_.KindOf(pool.DomainOf(id));
    ValueFeatures f = AnalyzeValue(pool.StringOf(id), kind);
    if (kind == FeatureKind::kTitle) {
      // Grow the corpus model first so a title's own tokens always count
      // toward its document frequencies, then vectorize against it.
      title_model_.AddDocument(f.title.tokens);
      f.tfidf = title_model_.Vectorize(f.title.tokens);
      signature_bytes_ +=
          static_cast<int64_t>(2 * sizeof(strsim::BitSig256) +
                               sizeof(f.title_norm_len));
    }
    approximate_bytes_ += f.ApproximateBytes();
    features_.push_back(std::move(f));
  }
}

double FeaturePairSimilarity(int evidence, const ValueFeatures& a,
                             const ValueFeatures& b) {
  switch (evidence) {
    case kEvPersonName:
      return PersonNameFieldSimilarity(a, b);
    case kEvPersonEmail:
      return EmailFieldSimilarity(a, b);
    case kEvPersonNameEmail: {
      // Identify sides by kind so callers need not order the pair.
      const ValueFeatures& name_side =
          (a.kind == FeatureKind::kPersonName) ? a : b;
      const ValueFeatures& email_side =
          (a.kind == FeatureKind::kPersonName) ? b : a;
      return NameEmailFieldSimilarity(name_side, email_side);
    }
    case kEvArticleTitle:
      return TitleFieldSimilarity(a, b);
    case kEvArticleYear:
    case kEvVenueYear:
      return YearFieldSimilarity(a, b);
    case kEvArticlePages:
      return PagesFieldSimilarity(a, b);
    case kEvVenueName:
      return VenueNameFieldSimilarity(a, b);
    case kEvVenueLocation:
      return LocationFieldSimilarity(a, b);
    default:
      return 0.0;
  }
}

double TitleSimilarityUpperBoundFromPops(int gram_pop, int token_pop,
                                         const ValueFeatures& a,
                                         const ValueFeatures& b) {
  // Mirrors TitleSimilarity's structure: either normalized form empty
  // means the exact comparator returns 0.0 outright.
  if (a.title_norm_len == 0 || b.title_norm_len == 0) return 0.0;
  const int la = static_cast<int>(a.title_norm_len);
  const int lb = static_cast<int>(b.title_norm_len);
  const int edit_lb =
      strsim::SigEditDistanceLowerBoundFromPop(gram_pop, la, lb, 3);
  const double edit_ub =
      1.0 - static_cast<double>(edit_lb) /
                static_cast<double>(la > lb ? la : lb);
  const double token_ub = strsim::SigJaccardUpperBoundFromPop(
      token_pop, a.title_token_sig.set_size, b.title_token_sig.set_size);
  return edit_ub > token_ub ? edit_ub : token_ub;
}

double TitleSimilarityUpperBound(const ValueFeatures& a,
                                 const ValueFeatures& b) {
  return TitleSimilarityUpperBoundFromPops(
      strsim::SigSymDiffLowerBound(a.title_gram_sig, b.title_gram_sig),
      strsim::SigSymDiffLowerBound(a.title_token_sig, b.title_token_sig),
      a, b);
}

void SimMemo::set_max_bytes(int64_t max_bytes) {
  max_bytes_ = max_bytes;
  per_shard_cap_ = max_bytes / kNumShards;
  // A cap too small to hold even a handful of entries per shard would
  // thrash; serve lookups as a pass-through instead.
  bypass_ = per_shard_cap_ < 8 * kEntryBytes;
}

}  // namespace recon
