#include "sim/comparators.h"

#include <algorithm>

#include "sim/value_store.h"
#include "strsim/email.h"
#include "strsim/person_name.h"
#include "strsim/title.h"
#include "strsim/venue.h"
#include "util/string_util.h"

namespace recon {

double PersonNameFieldSimilarity(const std::string& a, const std::string& b) {
  return PersonNameFieldSimilarity(strsim::ParsePersonName(a), ToLower(a),
                                   strsim::ParsePersonName(b), ToLower(b));
}

double PersonNameFieldSimilarity(const strsim::PersonName& pa,
                                 const std::string& lower_a,
                                 const strsim::PersonName& pb,
                                 const std::string& lower_b) {
  double sim = strsim::PersonNameSimilarity(pa, pb);
  if (pa.last.empty() || pb.last.empty()) {
    // A bare first name or nickname, even repeated verbatim, is too weak
    // to identify a person.
    sim = std::min(sim, kBareNameCap);
  } else if (!pa.IsFullName() || !pb.IsFullName()) {
    // An abbreviated scholarly form ("Wong, E.") repeated verbatim is an
    // equal attribute value and strong evidence; different abbreviated
    // forms need corroboration.
    if (lower_a == lower_b) {
      sim = kEqualAbbreviatedNameSim;
    } else {
      sim = std::min(sim, kAbbreviatedNameCap);
    }
  }
  return sim;
}

double PersonNameFieldSimilarity(const ValueFeatures& a,
                                 const ValueFeatures& b) {
  return PersonNameFieldSimilarity(a.name, a.lower, b.name, b.lower);
}

double EmailFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::EmailSimilarity(a, b);
}

double EmailFieldSimilarity(const ValueFeatures& a, const ValueFeatures& b) {
  return strsim::EmailSimilarity(a.email, b.email);
}

double NameEmailFieldSimilarity(const std::string& name,
                                const std::string& email) {
  return strsim::NameEmailSimilarity(name, email);
}

double NameEmailFieldSimilarity(const strsim::PersonName& name,
                                const strsim::EmailAddress& email) {
  return strsim::NameEmailSimilarity(name, email);
}

double NameEmailFieldSimilarity(const ValueFeatures& name,
                                const ValueFeatures& email) {
  return strsim::NameEmailSimilarity(name.name, email.email);
}

double TitleFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::TitleSimilarity(a, b);
}

double TitleFieldSimilarity(const ValueFeatures& a, const ValueFeatures& b) {
  return strsim::TitleSimilarity(a.title, b.title);
}

double VenueNameFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::VenueNameSimilarity(a, b);
}

double VenueNameFieldSimilarity(const ValueFeatures& a,
                                const ValueFeatures& b) {
  return strsim::VenueNameSimilarity(a.venue, b.venue);
}

double YearFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::YearSimilarity(a, b);
}

double YearFieldSimilarity(const ValueFeatures& a, const ValueFeatures& b) {
  return strsim::YearSimilarity(a.year, b.year);
}

double PagesFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::PagesSimilarity(a, b);
}

double PagesFieldSimilarity(const ValueFeatures& a, const ValueFeatures& b) {
  return strsim::PagesSimilarity(a.pages, b.pages);
}

double LocationFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::LocationSimilarity(a, b);
}

double LocationFieldSimilarity(const ValueFeatures& a,
                               const ValueFeatures& b) {
  return strsim::LocationSimilarity(a.location, b.location);
}

}  // namespace recon
