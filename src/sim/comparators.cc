#include "sim/comparators.h"

#include <algorithm>

#include "strsim/email.h"
#include "strsim/person_name.h"
#include "strsim/title.h"
#include "strsim/venue.h"
#include "util/string_util.h"

namespace recon {

double PersonNameFieldSimilarity(const std::string& a, const std::string& b) {
  const strsim::PersonName pa = strsim::ParsePersonName(a);
  const strsim::PersonName pb = strsim::ParsePersonName(b);
  double sim = strsim::PersonNameSimilarity(pa, pb);
  if (pa.last.empty() || pb.last.empty()) {
    // A bare first name or nickname, even repeated verbatim, is too weak
    // to identify a person.
    sim = std::min(sim, kBareNameCap);
  } else if (!pa.IsFullName() || !pb.IsFullName()) {
    // An abbreviated scholarly form ("Wong, E.") repeated verbatim is an
    // equal attribute value and strong evidence; different abbreviated
    // forms need corroboration.
    if (ToLower(a) == ToLower(b)) {
      sim = kEqualAbbreviatedNameSim;
    } else {
      sim = std::min(sim, kAbbreviatedNameCap);
    }
  }
  return sim;
}

double EmailFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::EmailSimilarity(a, b);
}

double NameEmailFieldSimilarity(const std::string& name,
                                const std::string& email) {
  return strsim::NameEmailSimilarity(name, email);
}

double TitleFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::TitleSimilarity(a, b);
}

double VenueNameFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::VenueNameSimilarity(a, b);
}

double YearFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::YearSimilarity(a, b);
}

double PagesFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::PagesSimilarity(a, b);
}

double LocationFieldSimilarity(const std::string& a, const std::string& b) {
  return strsim::LocationSimilarity(a, b);
}

}  // namespace recon
