#include "sim/evidence.h"

namespace recon {

const char* EvidenceName(int evidence) {
  switch (evidence) {
    case kEvPersonName:
      return "person.name";
    case kEvPersonEmail:
      return "person.email";
    case kEvPersonNameEmail:
      return "person.name~email";
    case kEvPersonContact:
      return "person.contact";
    case kEvPersonArticle:
      return "person.article";
    case kEvArticleTitle:
      return "article.title";
    case kEvArticleYear:
      return "article.year";
    case kEvArticlePages:
      return "article.pages";
    case kEvArticleAuthors:
      return "article.authors";
    case kEvArticleVenue:
      return "article.venue";
    case kEvVenueName:
      return "venue.name";
    case kEvVenueYear:
      return "venue.year";
    case kEvVenueLocation:
      return "venue.location";
    case kEvVenueArticle:
      return "venue.article";
    default:
      return "unknown";
  }
}

}  // namespace recon
