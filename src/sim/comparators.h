// Field comparators: the atomic-attribute similarity functions plugged into
// the dependency graph's value nodes. Thin, domain-aware wrappers over
// strsim that also encode reconciliation policy (e.g. abbreviated person
// names alone can never reach the merge threshold).

#ifndef RECON_SIM_COMPARATORS_H_
#define RECON_SIM_COMPARATORS_H_

#include <string>

#include "strsim/email.h"
#include "strsim/person_name.h"

namespace recon {

struct ValueFeatures;

/// Person name vs person name. Capped at kAbbreviatedNameCap unless *both*
/// names have a full given name and a last name: "Wong, E." cannot merge
/// with "Eugene Wong" on the name alone — it needs corroborating evidence,
/// which is exactly the paper's design. Exception: *identical* strings are
/// equal attribute values (the paper's attribute threshold of 1.0), so two
/// occurrences of the same abbreviated string score
/// kEqualAbbreviatedNameSim, high enough to merge on their own.
double PersonNameFieldSimilarity(const std::string& a, const std::string& b);

/// Parsed-level form: each side analyzed once by the caller and reused
/// across pairs. `lower_a`/`lower_b` are the lowercased raw strings (the
/// identical-abbreviation check is on the raw form, not the parse).
double PersonNameFieldSimilarity(const strsim::PersonName& pa,
                                 const std::string& lower_a,
                                 const strsim::PersonName& pb,
                                 const std::string& lower_b);

/// Feature-level form over store-analyzed values; identical result.
double PersonNameFieldSimilarity(const ValueFeatures& a,
                                 const ValueFeatures& b);

/// Cap applied by PersonNameFieldSimilarity to non-full names.
inline constexpr double kAbbreviatedNameCap = 0.80;
/// Cap when either side is a bare first name / nickname (no last name):
/// two "Ronald"s are barely evidence at all. Exactly at the default t_rv
/// (0.7): boolean evidence applies, but a bare-name pair needs the maximum
/// weak-contact reward to reach the merge threshold.
inline constexpr double kBareNameCap = 0.70;
/// Score of byte-identical abbreviated strings that do have a last name.
inline constexpr double kEqualAbbreviatedNameSim = 0.88;

/// Email vs email (1.0 on case-insensitive equality: a key attribute).
double EmailFieldSimilarity(const std::string& a, const std::string& b);
double EmailFieldSimilarity(const ValueFeatures& a, const ValueFeatures& b);

/// Person name vs email account (cross-attribute evidence).
double NameEmailFieldSimilarity(const std::string& name,
                                const std::string& email);
/// Parsed-level form: name and email analyzed once by the caller.
double NameEmailFieldSimilarity(const strsim::PersonName& name,
                                const strsim::EmailAddress& email);
/// Feature-level form; `name` must be a kPersonName value and `email` a
/// kEmail value.
double NameEmailFieldSimilarity(const ValueFeatures& name,
                                const ValueFeatures& email);

/// Article title vs title.
double TitleFieldSimilarity(const std::string& a, const std::string& b);
double TitleFieldSimilarity(const ValueFeatures& a, const ValueFeatures& b);

/// Venue name vs venue name (acronym-aware).
double VenueNameFieldSimilarity(const std::string& a, const std::string& b);
double VenueNameFieldSimilarity(const ValueFeatures& a,
                                const ValueFeatures& b);

/// Year vs year.
double YearFieldSimilarity(const std::string& a, const std::string& b);
double YearFieldSimilarity(const ValueFeatures& a, const ValueFeatures& b);

/// Page range vs page range.
double PagesFieldSimilarity(const std::string& a, const std::string& b);
double PagesFieldSimilarity(const ValueFeatures& a, const ValueFeatures& b);

/// Location vs location.
double LocationFieldSimilarity(const std::string& a, const std::string& b);
double LocationFieldSimilarity(const ValueFeatures& a,
                               const ValueFeatures& b);

}  // namespace recon

#endif  // RECON_SIM_COMPARATORS_H_
