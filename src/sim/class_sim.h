// Per-class reference similarity functions (paper §4):
//   S = min(1, S_rv + S_sb + S_wb)
// where S_rv is a decision tree of linear combinations over present
// real-valued evidence, S_sb = beta * #merged strong-boolean neighbors, and
// S_wb = gamma * #merged weak-boolean neighbors, both gated on S_rv >= t_rv.

#ifndef RECON_SIM_CLASS_SIM_H_
#define RECON_SIM_CLASS_SIM_H_

#include <array>
#include <memory>

#include "sim/evidence.h"
#include "sim/params.h"

namespace recon {

/// Inputs to a class similarity function, assembled by the reconciler from
/// a node's incoming dependencies (MAX per evidence type over real-valued
/// neighbors, per Eq. 1's multi-valued-attribute rule) plus the node's
/// static evidence.
struct EvidenceSummary {
  EvidenceSummary() { best.fill(-1.0); }

  /// Best similarity per real-valued evidence channel; -1 when the channel
  /// has no evidence at all (which is different from evidence of value 0).
  std::array<double, kNumEvidence> best;
  /// Number of merged strong-boolean incoming neighbors.
  int strong_merged = 0;
  /// Number of merged weak-boolean incoming neighbors.
  int weak_merged = 0;

  bool Has(Evidence e) const { return best[e] >= 0.0; }
  double Get(Evidence e) const { return best[e]; }
  void Offer(int evidence, double sim);
};

/// A reference-pair similarity function for one class.
class ClassSimilarity {
 public:
  virtual ~ClassSimilarity() = default;

  /// Returns the similarity in [0, 1].
  virtual double Compute(const EvidenceSummary& evidence) const = 0;
};

/// Person similarity: names, emails (key attribute), name~email
/// cross-evidence, authored-article strong evidence, common-contact weak
/// evidence.
class PersonSimilarity : public ClassSimilarity {
 public:
  explicit PersonSimilarity(const SimParams& params) : params_(params) {}
  double Compute(const EvidenceSummary& evidence) const override;

 private:
  SimParams params_;
};

/// Article similarity: title-dominated with author / venue / pages / year
/// corroboration.
class ArticleSimilarity : public ClassSimilarity {
 public:
  explicit ArticleSimilarity(const SimParams& params) : params_(params) {}
  double Compute(const EvidenceSummary& evidence) const override;

 private:
  SimParams params_;
};

/// Venue similarity: name-dominated with published-article strong evidence
/// (beta = 0.2, t_rv = 0.1 per the paper).
class VenueSimilarity : public ClassSimilarity {
 public:
  explicit VenueSimilarity(const SimParams& params) : params_(params) {}
  double Compute(const EvidenceSummary& evidence) const override;

 private:
  SimParams params_;
};

/// Builds the similarity function for `class_name` ("Person", "Article",
/// "Venue"). Aborts on unknown classes.
std::unique_ptr<ClassSimilarity> MakeClassSimilarity(
    const char* class_name, const SimParams& params);

}  // namespace recon

#endif  // RECON_SIM_CLASS_SIM_H_
