// Evidence types: tags on dependency edges naming which term of a class's
// similarity function a neighbor feeds (paper §4, the "types of real-valued
// neighbors" T_i of Equation 1, plus boolean evidence channels).

#ifndef RECON_SIM_EVIDENCE_H_
#define RECON_SIM_EVIDENCE_H_

namespace recon {

/// All evidence channels across the PIM / Cora schemas.
enum Evidence : int {
  // Person-pair evidence.
  kEvPersonName = 0,   ///< name vs name (real-valued)
  kEvPersonEmail,      ///< email vs email (real-valued; equality is a key)
  kEvPersonNameEmail,  ///< name vs email account (real-valued, cross-attr)
  kEvPersonContact,    ///< common coAuthor/emailContact (weak-boolean)
  kEvPersonArticle,    ///< merged authored-article pair (strong-boolean)

  // Article-pair evidence.
  kEvArticleTitle,   ///< title vs title (real-valued)
  kEvArticleYear,    ///< year vs year (real-valued)
  kEvArticlePages,   ///< pages vs pages (real-valued)
  kEvArticleAuthors, ///< similarity of author pairs (real-valued, MAX)
  kEvArticleVenue,   ///< similarity of the venue pair (real-valued)

  // Venue-pair evidence.
  kEvVenueName,     ///< name vs name (real-valued)
  kEvVenueYear,     ///< year vs year (real-valued)
  kEvVenueLocation, ///< location vs location (real-valued)
  kEvVenueArticle,  ///< merged published-article pair (strong-boolean)

  kNumEvidence
};

/// Short printable name for diagnostics.
const char* EvidenceName(int evidence);

}  // namespace recon

#endif  // RECON_SIM_EVIDENCE_H_
