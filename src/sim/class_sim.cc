#include "sim/class_sim.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "util/logging.h"

namespace recon {

namespace {

/// Applies S_sb and S_wb on top of S_rv and clamps to [0, 1].
double ApplyBooleanEvidence(double s_rv, const EvidenceSummary& evidence,
                            const BooleanEvidenceParams& params) {
  double s = s_rv;
  if (s_rv >= params.t_rv) {
    s += params.beta * evidence.strong_merged;
    s += params.gamma *
         std::min(evidence.weak_merged, params.max_weak_rewarded);
  }
  return std::clamp(s, 0.0, 1.0);
}

}  // namespace

void EvidenceSummary::Offer(int evidence, double sim) {
  RECON_DCHECK(evidence >= 0 && evidence < kNumEvidence);
  if (sim > best[evidence]) best[evidence] = sim;
}

double PersonSimilarity::Compute(const EvidenceSummary& evidence) const {
  const bool has_name = evidence.Has(kEvPersonName);
  const bool has_email = evidence.Has(kEvPersonEmail);
  const bool has_ne = evidence.Has(kEvPersonNameEmail);

  // Key attribute (§4): two persons with the same email address are the
  // same person regardless of everything else.
  if (has_email && evidence.Get(kEvPersonEmail) >= 1.0) return 1.0;

  const double name = has_name ? evidence.Get(kEvPersonName) : 0.0;
  const double email = has_email ? evidence.Get(kEvPersonEmail) : 0.0;
  const double ne = has_ne ? evidence.Get(kEvPersonNameEmail) : 0.0;

  // Decision tree over which evidence channels are present (§4: "a set of
  // similarity functions, rather than a single one", organized by the
  // existence of similarity values).
  double s_rv = 0.0;
  if (has_name && has_email) {
    s_rv = params_.person_w_name_with_email * name +
           params_.person_w_email_with_name * email;
    if (has_ne) {
      s_rv = std::max(s_rv, params_.person_w_name_full * name +
                                params_.person_w_email_full * email +
                                params_.person_w_ne_full * ne);
    }
  } else if (has_name && has_ne) {
    s_rv = std::max(name, params_.person_w_name_ne * name +
                              params_.person_w_ne_ne * ne);
  } else if (has_name) {
    s_rv = name;
  } else if (has_email && has_ne) {
    s_rv = std::max(params_.person_email_only_scale * email,
                    params_.person_ne_only_scale * ne);
  } else if (has_email) {
    s_rv = params_.person_email_only_scale * email;
  } else if (has_ne) {
    s_rv = params_.person_ne_only_scale * ne;
  }

  return ApplyBooleanEvidence(s_rv, evidence, params_.person);
}

double ArticleSimilarity::Compute(const EvidenceSummary& evidence) const {
  // Articles without comparable titles are never merged directly; they can
  // still be connected through the transitive closure.
  if (!evidence.Has(kEvArticleTitle)) return 0.0;
  const double title = evidence.Get(kEvArticleTitle);

  // Auxiliary evidence: renormalized weighted mean over present channels.
  double aux_weight = 0.0;
  double aux_sum = 0.0;
  const std::pair<Evidence, double> channels[] = {
      {kEvArticleAuthors, params_.article_w_authors},
      {kEvArticleVenue, params_.article_w_venue},
      {kEvArticlePages, params_.article_w_pages},
      {kEvArticleYear, params_.article_w_year},
  };
  for (const auto& [channel, weight] : channels) {
    if (evidence.Has(channel)) {
      aux_weight += weight;
      aux_sum += weight * evidence.Get(channel);
    }
  }

  double s_rv;
  if (aux_weight > 0.0) {
    s_rv = params_.article_w_title * title +
           (1.0 - params_.article_w_title) * (aux_sum / aux_weight);
  } else {
    s_rv = params_.article_title_only_scale * title;
  }
  return ApplyBooleanEvidence(s_rv, evidence, params_.article);
}

double VenueSimilarity::Compute(const EvidenceSummary& evidence) const {
  if (!evidence.Has(kEvVenueName)) return 0.0;

  // Renormalized weighted mean over present channels, name-dominated.
  double weight = params_.venue_w_name;
  double sum = params_.venue_w_name * evidence.Get(kEvVenueName);
  if (evidence.Has(kEvVenueYear)) {
    weight += params_.venue_w_year;
    sum += params_.venue_w_year * evidence.Get(kEvVenueYear);
  }
  if (evidence.Has(kEvVenueLocation)) {
    weight += params_.venue_w_location;
    sum += params_.venue_w_location * evidence.Get(kEvVenueLocation);
  }
  double s_rv = sum / weight;
  // A venue instance is one year's event: a year mismatch is strong
  // negative evidence ("SIGMOD 1998" is not "SIGMOD 1999"), far beyond its
  // linear weight. The penalty scales with how incompatible the years are
  // (adjacent years score 0.5 and are penalized at half strength).
  const bool hard_year_mismatch =
      evidence.Has(kEvVenueYear) && evidence.Get(kEvVenueYear) == 0.0;
  if (evidence.Has(kEvVenueYear) && evidence.Get(kEvVenueYear) < 1.0) {
    const double year = evidence.Get(kEvVenueYear);
    s_rv *= params_.venue_year_mismatch_penalty +
            (1.0 - params_.venue_year_mismatch_penalty) * year;
  }
  double s = ApplyBooleanEvidence(s_rv, evidence, params_.venue);
  // Not even a pile of merged articles may equate two venues whose years
  // plainly disagree — it would avalanche through the venue-name value
  // propagation (one bad merge certifies the name pair globally).
  if (hard_year_mismatch) {
    s = std::min(s, params_.venue_year_mismatch_cap);
  }
  return s;
}

std::unique_ptr<ClassSimilarity> MakeClassSimilarity(
    const char* class_name, const SimParams& params) {
  if (std::strcmp(class_name, "Person") == 0) {
    return std::make_unique<PersonSimilarity>(params);
  }
  if (std::strcmp(class_name, "Article") == 0) {
    return std::make_unique<ArticleSimilarity>(params);
  }
  if (std::strcmp(class_name, "Venue") == 0) {
    return std::make_unique<VenueSimilarity>(params);
  }
  RECON_LOG(Fatal) << "No similarity function for class " << class_name;
  return nullptr;
}

}  // namespace recon
