#include "model/subset.h"

#include <vector>

namespace recon {

Dataset FilterDataset(const Dataset& dataset,
                      const std::function<bool(RefId)>& keep) {
  std::vector<RefId> remap(dataset.num_references(), kInvalidRef);
  Dataset out(dataset.schema());
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    if (!keep(id)) continue;
    const Reference& ref = dataset.reference(id);
    Reference copy(ref.class_id(), ref.num_attributes());
    for (int attr = 0; attr < ref.num_attributes(); ++attr) {
      for (const std::string& value : ref.atomic_values(attr)) {
        copy.AddAtomicValue(attr, value);
      }
    }
    remap[id] = out.AddReference(std::move(copy), dataset.gold_entity(id),
                                 dataset.provenance(id));
  }
  // Second pass: remap association links among kept references.
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    if (remap[id] == kInvalidRef) continue;
    const Reference& ref = dataset.reference(id);
    Reference& copy = out.mutable_reference(remap[id]);
    for (int attr = 0; attr < ref.num_attributes(); ++attr) {
      for (const RefId target : ref.associations(attr)) {
        if (remap[target] != kInvalidRef) {
          copy.AddAssociation(attr, remap[target]);
        }
      }
    }
  }
  return out;
}

}  // namespace recon
