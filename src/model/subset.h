// Dataset filtering: extracts sub-datasets (e.g. the PEmail / PArticle
// person subsets of Table 3) while remapping association links.

#ifndef RECON_MODEL_SUBSET_H_
#define RECON_MODEL_SUBSET_H_

#include <functional>

#include "model/dataset.h"

namespace recon {

/// Returns a new dataset containing exactly the references for which
/// `keep(id)` is true, with the same schema. Association links to dropped
/// references are removed; kept links are remapped to the new ids. Gold
/// labels and provenance are preserved.
Dataset FilterDataset(const Dataset& dataset,
                      const std::function<bool(RefId)>& keep);

}  // namespace recon

#endif  // RECON_MODEL_SUBSET_H_
