// Plain-text (de)serialization of datasets, so reconciliation inputs and
// gold standards can be stored in files, versioned, and exchanged.
//
// Format (UTF-8, line-oriented, tab-separated; '\\', '\t', '\n' escaped):
//   # recon dataset v1
//   class <name>
//   attr <class> <name>                       # atomic
//   attr <class> *<name> <target-class>      # association
//   ref <class> <gold> <email|bibtex|other>
//   a <attr-name> <value>                     # atomic value of last ref
//   l <attr-name> <target-ref-index>          # association of last ref

#ifndef RECON_MODEL_TEXT_IO_H_
#define RECON_MODEL_TEXT_IO_H_

#include <string>
#include <string_view>

#include "model/dataset.h"
#include "util/status.h"

namespace recon {

/// Serializes the dataset (schema + references + labels + provenance).
std::string SerializeDataset(const Dataset& dataset);

/// Parses a dataset serialized by SerializeDataset. Returns a descriptive
/// error (with line number) on malformed input.
StatusOr<Dataset> ParseDataset(std::string_view text);

/// File convenience wrappers.
Status SaveDatasetToFile(const Dataset& dataset, const std::string& path);
StatusOr<Dataset> LoadDatasetFromFile(const std::string& path);

}  // namespace recon

#endif  // RECON_MODEL_TEXT_IO_H_
