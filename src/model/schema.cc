#include "model/schema.h"

#include "util/logging.h"

namespace recon {

int ClassDef::FindAttribute(std::string_view name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::AddClass(std::string name) {
  RECON_CHECK(!finalized_) << "Schema already finalized";
  RECON_CHECK_EQ(FindClass(name), -1) << "Duplicate class: " << name;
  classes_.push_back(ClassDef{std::move(name), {}});
  return static_cast<int>(classes_.size()) - 1;
}

int Schema::AddAtomicAttribute(int class_id, std::string name) {
  RECON_CHECK(!finalized_);
  RECON_CHECK(class_id >= 0 && class_id < num_classes());
  ClassDef& cls = classes_[class_id];
  RECON_CHECK_EQ(cls.FindAttribute(name), -1)
      << "Duplicate attribute " << name << " in class " << cls.name;
  cls.attributes.push_back(
      AttributeDef{std::move(name), AttrKind::kAtomic, "", -1});
  return cls.num_attributes() - 1;
}

int Schema::AddAssociationAttribute(int class_id, std::string name,
                                    std::string target_class) {
  RECON_CHECK(!finalized_);
  RECON_CHECK(class_id >= 0 && class_id < num_classes());
  ClassDef& cls = classes_[class_id];
  RECON_CHECK_EQ(cls.FindAttribute(name), -1)
      << "Duplicate attribute " << name << " in class " << cls.name;
  cls.attributes.push_back(AttributeDef{std::move(name),
                                        AttrKind::kAssociation,
                                        std::move(target_class), -1});
  return cls.num_attributes() - 1;
}

Status Schema::Finalize() {
  for (ClassDef& cls : classes_) {
    for (AttributeDef& attr : cls.attributes) {
      if (attr.kind != AttrKind::kAssociation) continue;
      attr.target_class_id = FindClass(attr.target_class);
      if (attr.target_class_id < 0) {
        return Status::InvalidArgument("Unknown association target class '" +
                                       attr.target_class + "' in " +
                                       cls.name + "." + attr.name);
      }
    }
  }
  finalized_ = true;
  return Status::Ok();
}

const ClassDef& Schema::class_def(int class_id) const {
  RECON_CHECK(class_id >= 0 && class_id < num_classes());
  return classes_[class_id];
}

int Schema::FindClass(std::string_view name) const {
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::RequireAttribute(int class_id, std::string_view attr) const {
  const int index = class_def(class_id).FindAttribute(attr);
  RECON_CHECK_GE(index, 0) << "Missing attribute " << attr << " in class "
                           << class_def(class_id).name;
  return index;
}

int Schema::RequireClass(std::string_view name) const {
  const int id = FindClass(name);
  RECON_CHECK_GE(id, 0) << "Missing class " << name;
  return id;
}

}  // namespace recon
