// Schema: classes with atomic and association attributes (paper §2.1).

#ifndef RECON_MODEL_SCHEMA_H_
#define RECON_MODEL_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace recon {

/// Attribute kinds: atomic values are strings; association values are links
/// to other references.
enum class AttrKind { kAtomic, kAssociation };

/// One attribute of a class.
struct AttributeDef {
  std::string name;
  AttrKind kind = AttrKind::kAtomic;
  /// For association attributes: the referenced class (resolved by
  /// Schema::Finalize()).
  std::string target_class;
  int target_class_id = -1;
};

/// One class of the schema.
struct ClassDef {
  std::string name;
  std::vector<AttributeDef> attributes;

  /// Index of the attribute named `name`, or -1.
  int FindAttribute(std::string_view name) const;
  int num_attributes() const { return static_cast<int>(attributes.size()); }
};

/// A set of classes. Build with AddClass/Add*Attribute, then Finalize() to
/// resolve association targets. Immutable afterwards by convention.
class Schema {
 public:
  Schema() = default;

  /// Adds a class and returns its id. Duplicate names abort.
  int AddClass(std::string name);

  /// Adds an atomic attribute to `class_id`; returns the attribute index.
  int AddAtomicAttribute(int class_id, std::string name);

  /// Adds an association attribute targeting `target_class` (which may be
  /// declared later); returns the attribute index.
  int AddAssociationAttribute(int class_id, std::string name,
                              std::string target_class);

  /// Resolves association target class names. Fails on unknown targets.
  Status Finalize();

  int num_classes() const { return static_cast<int>(classes_.size()); }
  const ClassDef& class_def(int class_id) const;

  /// Id of the class named `name`, or -1.
  int FindClass(std::string_view name) const;

  /// Attribute index of `attr` in class `class_id`; aborts if missing.
  /// Convenience for wiring code that knows the schema statically.
  int RequireAttribute(int class_id, std::string_view attr) const;
  int RequireClass(std::string_view name) const;

  bool finalized() const { return finalized_; }

 private:
  std::vector<ClassDef> classes_;
  bool finalized_ = false;
};

}  // namespace recon

#endif  // RECON_MODEL_SCHEMA_H_
