#include "model/text_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace recon {

namespace {

constexpr char kMagic[] = "# recon dataset v1";

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        out.push_back(s[i]);
    }
  }
  return out;
}

const char* ProvenanceTag(Provenance p) {
  switch (p) {
    case Provenance::kEmail:
      return "email";
    case Provenance::kBibtex:
      return "bibtex";
    case Provenance::kOther:
      return "other";
  }
  return "other";
}

StatusOr<Provenance> ParseProvenance(std::string_view tag) {
  if (tag == "email") return Provenance::kEmail;
  if (tag == "bibtex") return Provenance::kBibtex;
  if (tag == "other") return Provenance::kOther;
  return Status::InvalidArgument("unknown provenance '" + std::string(tag) +
                                 "'");
}

}  // namespace

std::string SerializeDataset(const Dataset& dataset) {
  std::ostringstream out;
  out << kMagic << "\n";

  const Schema& schema = dataset.schema();
  for (int c = 0; c < schema.num_classes(); ++c) {
    out << "class\t" << Escape(schema.class_def(c).name) << "\n";
  }
  for (int c = 0; c < schema.num_classes(); ++c) {
    const ClassDef& cls = schema.class_def(c);
    for (const AttributeDef& attr : cls.attributes) {
      if (attr.kind == AttrKind::kAtomic) {
        out << "attr\t" << Escape(cls.name) << "\t" << Escape(attr.name)
            << "\n";
      } else {
        out << "attr\t" << Escape(cls.name) << "\t*" << Escape(attr.name)
            << "\t" << Escape(attr.target_class) << "\n";
      }
    }
  }

  for (RefId id = 0; id < dataset.num_references(); ++id) {
    const Reference& ref = dataset.reference(id);
    const ClassDef& cls = schema.class_def(ref.class_id());
    out << "ref\t" << Escape(cls.name) << "\t" << dataset.gold_entity(id)
        << "\t" << ProvenanceTag(dataset.provenance(id)) << "\n";
    for (int attr = 0; attr < ref.num_attributes(); ++attr) {
      const std::string& attr_name = cls.attributes[attr].name;
      for (const std::string& value : ref.atomic_values(attr)) {
        out << "a\t" << Escape(attr_name) << "\t" << Escape(value) << "\n";
      }
      for (const RefId target : ref.associations(attr)) {
        out << "l\t" << Escape(attr_name) << "\t" << target << "\n";
      }
    }
  }
  return out.str();
}

StatusOr<Dataset> ParseDataset(std::string_view text) {
  const std::vector<std::string> lines = Split(text, '\n');
  size_t line_number = 0;
  auto error = [&line_number](const std::string& message) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": " + message);
  };

  if (lines.empty() || Trim(lines[0]) != kMagic) {
    return Status::InvalidArgument("missing magic header '" +
                                   std::string(kMagic) + "'");
  }

  // Pass 1: schema.
  Schema schema;
  for (const std::string& raw : lines) {
    ++line_number;
    const std::vector<std::string> fields = Split(raw, '\t');
    if (fields.empty()) continue;
    if (fields[0] == "class") {
      if (fields.size() != 2) return error("class needs a name");
      if (schema.FindClass(Unescape(fields[1])) >= 0) {
        return error("duplicate class " + fields[1]);
      }
      schema.AddClass(Unescape(fields[1]));
    } else if (fields[0] == "attr") {
      if (fields.size() < 3) return error("attr needs class and name");
      const int class_id = schema.FindClass(Unescape(fields[1]));
      if (class_id < 0) return error("unknown class " + fields[1]);
      std::string name = Unescape(fields[2]);
      const std::string bare =
          (!name.empty() && name[0] == '*') ? name.substr(1) : name;
      if (schema.class_def(class_id).FindAttribute(bare) >= 0) {
        return error("duplicate attribute " + bare);
      }
      if (!name.empty() && name[0] == '*') {
        if (fields.size() != 4) {
          return error("association attr needs a target class");
        }
        schema.AddAssociationAttribute(class_id, name.substr(1),
                                       Unescape(fields[3]));
      } else {
        if (fields.size() != 3) return error("atomic attr takes no target");
        schema.AddAtomicAttribute(class_id, std::move(name));
      }
    }
  }
  RECON_RETURN_IF_ERROR(schema.Finalize());
  Dataset dataset(std::move(schema));

  // Pass 2: references. Association targets may be forward references, so
  // collect links and apply them afterwards.
  struct PendingLink {
    RefId source;
    int attr;
    RefId target;
    size_t line;
  };
  std::vector<PendingLink> links;
  RefId current = kInvalidRef;
  int current_class = -1;
  line_number = 0;
  for (const std::string& raw : lines) {
    ++line_number;
    const std::vector<std::string> fields = Split(raw, '\t');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "ref") {
      if (fields.size() != 4) return error("ref needs class, gold, source");
      current_class = dataset.schema().FindClass(Unescape(fields[1]));
      if (current_class < 0) return error("unknown class " + fields[1]);
      StatusOr<Provenance> provenance = ParseProvenance(fields[3]);
      if (!provenance.ok()) return error(provenance.status().message());
      current = dataset.NewReference(current_class, std::atoi(fields[2].c_str()),
                                     provenance.value());
    } else if (fields[0] == "a" || fields[0] == "l") {
      if (current == kInvalidRef) return error("value before any ref");
      if (fields.size() != 3) return error("value needs attr and payload");
      const int attr = dataset.schema()
                           .class_def(current_class)
                           .FindAttribute(Unescape(fields[1]));
      if (attr < 0) return error("unknown attribute " + fields[1]);
      const AttributeDef& def =
          dataset.schema().class_def(current_class).attributes[attr];
      if (fields[0] == "a") {
        if (def.kind != AttrKind::kAtomic) {
          return error("'a' on association attribute " + fields[1]);
        }
        dataset.mutable_reference(current).AddAtomicValue(
            attr, Unescape(fields[2]));
      } else {
        if (def.kind != AttrKind::kAssociation) {
          return error("'l' on atomic attribute " + fields[1]);
        }
        links.push_back({current, attr,
                         static_cast<RefId>(std::atoi(fields[2].c_str())),
                         line_number});
      }
    }
  }

  for (const PendingLink& link : links) {
    line_number = link.line;
    if (link.target < 0 || link.target >= dataset.num_references()) {
      return error("link target out of range");
    }
    dataset.mutable_reference(link.source).AddAssociation(link.attr,
                                                          link.target);
  }
  return dataset;
}

Status SaveDatasetToFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << SerializeDataset(dataset);
  out.close();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

StatusOr<Dataset> LoadDatasetFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDataset(buffer.str());
}

}  // namespace recon
