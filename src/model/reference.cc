#include "model/reference.h"

#include <algorithm>

namespace recon {

namespace {
const std::string kEmptyString;
}  // namespace

void Reference::AddAtomicValue(int attr, std::string value) {
  RECON_CHECK(attr >= 0 && attr < num_attributes());
  if (value.empty()) return;
  auto& values = atomic_[attr];
  if (std::find(values.begin(), values.end(), value) == values.end()) {
    values.push_back(std::move(value));
  }
}

void Reference::AddAssociation(int attr, RefId target) {
  RECON_CHECK(attr >= 0 && attr < num_attributes());
  RECON_CHECK_GE(target, 0);
  auto& targets = associations_[attr];
  if (std::find(targets.begin(), targets.end(), target) == targets.end()) {
    targets.push_back(target);
  }
}

const std::string& Reference::FirstValue(int attr) const {
  RECON_CHECK(attr >= 0 && attr < num_attributes());
  return atomic_[attr].empty() ? kEmptyString : atomic_[attr].front();
}

bool Reference::IsEmpty() const {
  for (const auto& values : atomic_) {
    if (!values.empty()) return false;
  }
  for (const auto& targets : associations_) {
    if (!targets.empty()) return false;
  }
  return true;
}

}  // namespace recon
