#include "model/dataset.h"

#include <set>

namespace recon {

RefId Dataset::AddReference(Reference ref, int gold_entity,
                            Provenance provenance) {
  RECON_CHECK(ref.class_id() >= 0 && ref.class_id() < schema_.num_classes());
  RECON_CHECK_EQ(ref.num_attributes(),
                 schema_.class_def(ref.class_id()).num_attributes());
  refs_.push_back(std::move(ref));
  gold_.push_back(gold_entity);
  provenance_.push_back(provenance);
  return static_cast<RefId>(refs_.size()) - 1;
}

RefId Dataset::NewReference(int class_id, int gold_entity,
                            Provenance provenance) {
  RECON_CHECK(class_id >= 0 && class_id < schema_.num_classes());
  return AddReference(
      Reference(class_id, schema_.class_def(class_id).num_attributes()),
      gold_entity, provenance);
}

std::vector<RefId> Dataset::ReferencesOfClass(int class_id) const {
  std::vector<RefId> out;
  for (RefId id = 0; id < num_references(); ++id) {
    if (refs_[id].class_id() == class_id) out.push_back(id);
  }
  return out;
}

int Dataset::NumEntitiesOfClass(int class_id) const {
  std::set<int> entities;
  for (RefId id = 0; id < num_references(); ++id) {
    if (refs_[id].class_id() == class_id && gold_[id] >= 0) {
      entities.insert(gold_[id]);
    }
  }
  return static_cast<int>(entities.size());
}

Schema BuildPimSchema() {
  Schema schema;
  const int person = schema.AddClass("Person");
  const int article = schema.AddClass("Article");
  const int venue = schema.AddClass("Venue");

  schema.AddAtomicAttribute(person, "name");
  schema.AddAtomicAttribute(person, "email");
  schema.AddAssociationAttribute(person, "coAuthor", "Person");
  schema.AddAssociationAttribute(person, "emailContact", "Person");

  schema.AddAtomicAttribute(article, "title");
  schema.AddAtomicAttribute(article, "year");
  schema.AddAtomicAttribute(article, "pages");
  schema.AddAssociationAttribute(article, "authoredBy", "Person");
  schema.AddAssociationAttribute(article, "publishedIn", "Venue");

  schema.AddAtomicAttribute(venue, "name");
  schema.AddAtomicAttribute(venue, "year");
  schema.AddAtomicAttribute(venue, "location");

  RECON_CHECK(schema.Finalize().ok());
  return schema;
}

Schema BuildCoraSchema() {
  Schema schema;
  const int person = schema.AddClass("Person");
  const int article = schema.AddClass("Article");
  const int venue = schema.AddClass("Venue");

  schema.AddAtomicAttribute(person, "name");
  schema.AddAssociationAttribute(person, "coAuthor", "Person");

  schema.AddAtomicAttribute(article, "title");
  schema.AddAtomicAttribute(article, "pages");
  schema.AddAssociationAttribute(article, "authoredBy", "Person");
  schema.AddAssociationAttribute(article, "publishedIn", "Venue");

  schema.AddAtomicAttribute(venue, "name");
  schema.AddAtomicAttribute(venue, "year");
  schema.AddAtomicAttribute(venue, "location");

  RECON_CHECK(schema.Finalize().ok());
  return schema;
}

}  // namespace recon
