// Reference: a partial instance of a schema class (paper §2.1). Every
// attribute is multi-valued (possibly empty); association attributes hold
// links to other references by id.

#ifndef RECON_MODEL_REFERENCE_H_
#define RECON_MODEL_REFERENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace recon {

/// Dense id of a reference within a Dataset.
using RefId = int32_t;
inline constexpr RefId kInvalidRef = -1;

/// A reference to a real-world entity: a set of values per attribute.
class Reference {
 public:
  /// Creates an empty reference of `class_id` with `num_attributes` slots.
  Reference(int class_id, int num_attributes)
      : class_id_(class_id),
        atomic_(num_attributes),
        associations_(num_attributes) {}

  int class_id() const { return class_id_; }
  int num_attributes() const { return static_cast<int>(atomic_.size()); }

  /// Adds an atomic value; duplicate values are kept out.
  void AddAtomicValue(int attr, std::string value);

  /// Adds an association link; duplicate targets are kept out.
  void AddAssociation(int attr, RefId target);

  const std::vector<std::string>& atomic_values(int attr) const {
    RECON_DCHECK(attr >= 0 && attr < num_attributes());
    return atomic_[attr];
  }
  const std::vector<RefId>& associations(int attr) const {
    RECON_DCHECK(attr >= 0 && attr < num_attributes());
    return associations_[attr];
  }

  /// First atomic value of `attr`, or "" when absent. Convenience accessor
  /// for mostly-single-valued attributes.
  const std::string& FirstValue(int attr) const;

  /// True if the reference has no atomic values and no associations.
  bool IsEmpty() const;

 private:
  int class_id_;
  std::vector<std::vector<std::string>> atomic_;
  std::vector<std::vector<RefId>> associations_;
};

}  // namespace recon

#endif  // RECON_MODEL_REFERENCE_H_
