// Dataset: a schema, its references, provenance, and the gold standard.

#ifndef RECON_MODEL_DATASET_H_
#define RECON_MODEL_DATASET_H_

#include <string>
#include <vector>

#include "model/reference.h"
#include "model/schema.h"

namespace recon {

/// Where a reference was extracted from. Drives the PArticle / PEmail
/// subset experiments (Table 3) and provenance-specific behaviour.
enum class Provenance { kEmail, kBibtex, kOther };

/// A reconciliation input: references of multiple classes with association
/// links between them, plus the gold entity label of each reference.
class Dataset {
 public:
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {
    RECON_CHECK(schema_.finalized()) << "Dataset requires finalized schema";
  }

  /// Appends a reference; `gold_entity` is the ground-truth entity id
  /// (unique across the dataset; use -1 when unknown). Returns the RefId.
  RefId AddReference(Reference ref, int gold_entity,
                     Provenance provenance = Provenance::kOther);

  /// Creates an empty reference of `class_id` and appends it.
  RefId NewReference(int class_id, int gold_entity,
                     Provenance provenance = Provenance::kOther);

  const Schema& schema() const { return schema_; }
  int num_references() const { return static_cast<int>(refs_.size()); }

  const Reference& reference(RefId id) const {
    RECON_DCHECK(id >= 0 && id < num_references());
    return refs_[id];
  }
  Reference& mutable_reference(RefId id) {
    RECON_DCHECK(id >= 0 && id < num_references());
    return refs_[id];
  }

  int gold_entity(RefId id) const { return gold_[id]; }
  /// Attaches (or overrides) a ground-truth label after the fact — used
  /// when labels arrive separately from extraction.
  void SetGoldEntity(RefId id, int gold_entity) {
    RECON_DCHECK(id >= 0 && id < num_references());
    gold_[id] = gold_entity;
  }
  Provenance provenance(RefId id) const { return provenance_[id]; }

  /// All reference ids of a class, in id order.
  std::vector<RefId> ReferencesOfClass(int class_id) const;

  /// Number of distinct gold entities among references of `class_id`
  /// (ignoring unlabeled references).
  int NumEntitiesOfClass(int class_id) const;

 private:
  Schema schema_;
  std::vector<Reference> refs_;
  std::vector<int> gold_;
  std::vector<Provenance> provenance_;
};

/// Builds the paper's personal-information schema (Fig. 1a, with Conference
/// and Journal merged into Venue as in §5.1):
///   Person(name, email, *coAuthor, *emailContact)
///   Article(title, year, pages, *authoredBy, *publishedIn)
///   Venue(name, year, location)
Schema BuildPimSchema();

/// Builds the Cora schema (Fig. 5):
///   Person(name, *coAuthor)
///   Article(title, pages, *authoredBy, *publishedIn)
///   Venue(name, year, location)
Schema BuildCoraSchema();

}  // namespace recon

#endif  // RECON_MODEL_DATASET_H_
