// Canopy-sharded parallel reconciliation (DESIGN.md §14): partition the
// references by blocking key into K shards, stage every intra-shard
// candidate pair's evidence shard-parallel on the runtime pool (each shard
// under its own budget epoch), stage the cross-shard pairs in a dedicated
// boundary pass, then apply the staged evidence and run the fixed point in
// the single canonical order.
//
// Why not independent per-shard fixed points? The class similarities are
// presence-sensitive (an email channel that appears through enrichment can
// lower a person pair's score), so the solve is not confluent: a shard
// deciding pairs without the evidence held by another shard can commit
// merges the monolithic solve refuses, and merges cannot be rolled back.
// Measured on PIM B, >90% of references are transitively connected to a
// cross-shard candidate pair, so no repair pass can bound the damage.
// Staging, by contrast, is a pure function of the two references — it can
// run in any grouping — while the apply + solve order alone determines the
// output. Sharding the staging keeps the expensive work (string
// comparisons, evidence analysis) shard-parallel and shard-local, and the
// canonical solve keeps the output byte-identical to the unsharded run.

#ifndef RECON_SHARD_SHARDED_RECONCILER_H_
#define RECON_SHARD_SHARDED_RECONCILER_H_

#include "core/options.h"
#include "core/reconciler.h"
#include "model/dataset.h"

namespace recon::shard {

/// Reconciles `dataset` under `options`, partitioned into
/// options.num_shards shards (1 = a single shard and no boundary pass).
/// The partition, merged pairs, and their order are byte-identical to
/// Reconciler::Run for every shard count and thread count. Stats report
/// the shard breakdown (ReconcileStats::num_shards, num_boundary_pairs,
/// num_shard_merges, num_boundary_merges, shard_seconds,
/// boundary_seconds).
///
/// Budgets: deterministic execution caps (max_solver_iterations,
/// max_merges) are honored exactly — they bound the same canonical merge
/// sequence the monolithic solve runs. Deadlines, soft memory caps, and
/// cancellation are also checked by every shard's staging epoch, so a
/// binding stop abandons staging lanes shard by shard.
ReconcileResult ShardedReconcile(const Dataset& dataset,
                                 const ReconcilerOptions& options);

}  // namespace recon::shard

#endif  // RECON_SHARD_SHARDED_RECONCILER_H_
