// Canopy/blocking-key sharding of a dataset's references (DESIGN.md §14):
// each reference is assigned to one shard by its rarest blocking key, so
// that the pairs a discriminative block generates stay within one shard and
// the cross-shard residual stays small.

#ifndef RECON_SHARD_PARTITIONER_H_
#define RECON_SHARD_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "core/schema_binding.h"
#include "model/dataset.h"

namespace recon::shard {

/// Assignment of every reference to one of `num_shards` shards.
struct ShardPartition {
  int num_shards = 1;
  /// Per RefId: owning shard in [0, num_shards).
  std::vector<int> shard_of;
  /// References that produced no blocking key (assigned id % num_shards).
  int64_t num_keyless = 0;
};

/// Partitions references by blocking key: every reference picks its rarest
/// key (smallest block; ties to the lexicographically smaller key) as its
/// primary key, references sharing a primary key form a group, and groups
/// are placed greedily — largest group first, onto the least-loaded shard
/// (ties to the lowest shard index). Keyless references go to id %
/// num_shards. Key extraction runs on `num_threads` lanes; the assignment
/// itself is serial and deterministic for a given dataset and shard count.
ShardPartition PartitionByBlockingKey(const Dataset& dataset,
                                      const SchemaBinding& binding,
                                      int num_shards, int num_threads);

}  // namespace recon::shard

#endif  // RECON_SHARD_PARTITIONER_H_
