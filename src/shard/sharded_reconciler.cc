#include "shard/sharded_reconciler.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "core/graph_builder.h"
#include "core/premerge.h"
#include "core/reconciler.h"
#include "shard/partitioner.h"
#include "util/budget.h"
#include "util/timer.h"

namespace recon::shard {
namespace {

/// Severity order for combining stop reasons across budget epochs:
/// cancellation dominates (the caller asked), then the wall clock, then
/// the resource budgets.
int Severity(StopReason r) {
  switch (r) {
    case StopReason::kConverged: return 0;
    case StopReason::kMergeBudget: return 1;
    case StopReason::kIterationBudget: return 2;
    case StopReason::kMemoryBudget: return 3;
    case StopReason::kDeadline: return 4;
    case StopReason::kCancelled: return 5;
  }
  return 0;
}

StopReason WorseOf(StopReason a, StopReason b) {
  return Severity(a) >= Severity(b) ? a : b;
}

/// Remaps feedback pairs through `map` (original -> condensed ids),
/// dropping out-of-range pairs and pairs that fell into the same group —
/// the identical filtering Reconciler::Run applies around its premerge.
void RemapPairs(const std::vector<std::pair<int32_t, int32_t>>& in,
                const std::vector<RefId>& map,
                std::vector<std::pair<int32_t, int32_t>>* out) {
  const int32_t n = static_cast<int32_t>(map.size());
  for (const auto& [a, b] : in) {
    if (a < 0 || b < 0 || a >= n || b >= n) continue;
    const RefId ca = map[a];
    const RefId cb = map[b];
    if (ca != cb) out->emplace_back(ca, cb);
  }
}

}  // namespace

ReconcileResult ShardedReconcile(const Dataset& dataset,
                                 const ReconcilerOptions& options) {
  const int k = std::max(1, options.num_shards);
  // One tracker for the whole run, exactly as Reconciler::Run wires it:
  // the deadline covers candidate generation, partitioning, the build, and
  // the solve together (DESIGN.md §10).
  BudgetTracker tracker(options.budget, options.cancel, options.probe_hook);
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());

  // Key-attribute premerge once, globally — the same condensation the
  // monolithic path performs before it builds (core/premerge).
  PremergeResult premerge{Dataset(dataset.schema()), {}, {}};
  bool premerged = false;
  if (options.premerge_equal_emails) {
    premerge = PremergeEqualEmails(dataset, binding);
    premerged =
        premerge.condensed.num_references() < dataset.num_references();
  }
  const Dataset& d0 = premerged ? premerge.condensed : dataset;

  ReconcilerOptions opts0 = options;
  if (premerged) {
    opts0.feedback = Feedback{};
    RemapPairs(options.feedback.same, premerge.condensed_of,
               &opts0.feedback.same);
    RemapPairs(options.feedback.distinct, premerge.condensed_of,
               &opts0.feedback.distinct);
  }

  // Global candidate generation, then the canopy/blocking-key partition.
  // The candidate list is the one the monolithic build would generate for
  // itself; the partition only decides which staging lane computes each
  // pair's evidence.
  const CandidateList candidates =
      GenerateCandidates(d0, binding, opts0, &tracker);
  const ShardPartition part =
      PartitionByBlockingKey(d0, binding, k, options.num_threads);

  // Per-shard budget epochs: each shard's staging runs under its own
  // tracker carrying the run's remaining wall clock, the same soft memory
  // cap, and the shared cancellation token. Deterministic execution caps
  // (iteration / merge limits) are solver-side contracts and are honored
  // exactly by the canonical solve below, so they do not constrain the
  // staging epochs. The probe hook is a serial-only test seam and stays
  // with the run tracker.
  std::vector<std::unique_ptr<BudgetTracker>> epochs;
  std::vector<BudgetTracker*> epoch_ptrs;
  epochs.reserve(k);
  for (int s = 0; s < k; ++s) {
    Budget budget = options.budget;
    budget.max_solver_iterations = 0;
    budget.max_merges = 0;
    if (budget.HasDeadline()) {
      budget.deadline_ms =
          std::max(0.001, budget.deadline_ms - tracker.ElapsedMillis());
    }
    epochs.push_back(
        std::make_unique<BudgetTracker>(budget, options.cancel, nullptr));
    epoch_ptrs.push_back(epochs.back().get());
  }

  // Shard-staged build: intra-shard pairs are staged shard-parallel, the
  // cross-shard pairs in the boundary pass, and the staged evidence is
  // applied in canonical candidate order — the graph is byte-identical to
  // the monolithic build's (see BuildOverrides::shard_plan).
  ShardStageStats stage_stats;
  ShardStagePlan plan;
  plan.shard_of = &part.shard_of;
  plan.num_shards = k;
  plan.shard_budgets = epoch_ptrs;
  plan.stats = &stage_stats;
  BuildOverrides overrides;
  overrides.candidates = &candidates;
  overrides.shard_plan = &plan;
  Timer build_timer;
  BuiltGraph built = BuildDependencyGraph(d0, opts0, &tracker, overrides);
  const double build_seconds = build_timer.ElapsedSeconds();

  // Canonical fixed point over the assembled graph — the same solver, the
  // same queue, the same commit order as the monolithic run.
  ReconcileResult result =
      Reconciler(opts0).RunOnGraph(d0, built, &tracker);
  result.stats.build_seconds = build_seconds;

  // Classify the committed reference-pair merges by where the partition
  // put the pair: merges whose evidence was staged inside one shard
  // versus merges the boundary pass carried. Folded nodes keep their
  // merged state, so the scan sees every surviving merge decision.
  int64_t shard_merges = 0;
  int64_t boundary_merges = 0;
  const int total_nodes = built.graph->num_nodes();
  for (NodeId id = 0; id < total_nodes; ++id) {
    const Node& node = built.graph->node(id);
    if (!node.IsRefPair() || node.state != NodeState::kMerged) continue;
    if (part.shard_of[node.a] == part.shard_of[node.b]) {
      ++shard_merges;
    } else {
      ++boundary_merges;
    }
  }

  ReconcileStats& st = result.stats;
  st.num_shards = k;
  st.num_boundary_pairs = stage_stats.boundary_pairs;
  st.num_shard_merges = shard_merges;
  st.num_boundary_merges = boundary_merges;
  st.shard_seconds = stage_stats.shard_phase_seconds;
  st.boundary_seconds = stage_stats.boundary_seconds;
  StopReason stop = st.stop_reason;
  for (const auto& epoch : epochs) {
    st.num_budget_probes += epoch->num_probes();
    stop = WorseOf(stop, epoch->stop_reason());
  }
  st.stop_reason = stop;

  if (!premerged) return result;

  // Lift back to the original reference space, mirroring the monolithic
  // path's expansion (including the premerge's own key merges).
  ReconcileResult lifted;
  lifted.stats = result.stats;
  lifted.cluster = ExpandClusters(premerge, result.cluster);
  lifted.merged_pairs.reserve(result.merged_pairs.size());
  for (const auto& [a, b] : result.merged_pairs) {
    lifted.merged_pairs.emplace_back(premerge.original_rep[a],
                                     premerge.original_rep[b]);
  }
  for (RefId id = 0;
       id < static_cast<RefId>(premerge.condensed_of.size()); ++id) {
    const RefId rep = premerge.original_rep[premerge.condensed_of[id]];
    if (rep != id) lifted.merged_pairs.emplace_back(rep, id);
  }
  return lifted;
}

}  // namespace recon::shard
