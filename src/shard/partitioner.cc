#include "shard/partitioner.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/candidates.h"
#include "runtime/parallel.h"

namespace recon::shard {

ShardPartition PartitionByBlockingKey(const Dataset& dataset,
                                      const SchemaBinding& binding,
                                      int num_shards, int num_threads) {
  const int n = dataset.num_references();
  ShardPartition out;
  out.num_shards = std::max(1, num_shards);
  out.shard_of.assign(n, 0);
  if (out.num_shards == 1 || n == 0) return out;

  // Key extraction is pure per-reference work: fan it out with indexed
  // writes. Everything after this loop is serial, so the partition is a
  // deterministic function of (dataset, num_shards).
  std::vector<std::vector<std::string>> keys(n);
  runtime::ParallelFor(num_threads, 0, n, /*grain=*/256, [&](int64_t i) {
    keys[i] = BlockingKeys(dataset, static_cast<RefId>(i), binding);
  });

  std::unordered_map<std::string, int64_t> block_size;
  for (const auto& ref_keys : keys) {
    for (const std::string& key : ref_keys) ++block_size[key];
  }

  // Primary key = rarest key: the most discriminative block a reference
  // belongs to is the one most likely to pair it with its true duplicates,
  // so co-locating that block keeps those pairs intra-shard.
  std::unordered_map<std::string, std::vector<RefId>> groups;
  for (RefId id = 0; id < n; ++id) {
    const std::string* primary = nullptr;
    int64_t primary_size = 0;
    for (const std::string& key : keys[id]) {
      const int64_t size = block_size[key];
      if (primary == nullptr || size < primary_size ||
          (size == primary_size && key < *primary)) {
        primary = &key;
        primary_size = size;
      }
    }
    if (primary == nullptr) {
      out.shard_of[id] = static_cast<int>(id % out.num_shards);
      ++out.num_keyless;
    } else {
      groups[*primary].push_back(id);
    }
  }

  // Greedy balance: largest group first onto the least-loaded shard.
  // Sorted by (size desc, key asc) so the placement never depends on hash
  // iteration order.
  std::vector<std::pair<const std::string*, const std::vector<RefId>*>>
      ordered;
  ordered.reserve(groups.size());
  for (const auto& [key, refs] : groups) ordered.emplace_back(&key, &refs);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& x, const auto& y) {
              if (x.second->size() != y.second->size()) {
                return x.second->size() > y.second->size();
              }
              return *x.first < *y.first;
            });

  std::vector<int64_t> load(out.num_shards, 0);
  // Keyless references already count toward their shard's load.
  for (RefId id = 0; id < n; ++id) {
    if (keys[id].empty()) ++load[out.shard_of[id]];
  }
  for (const auto& [key, refs] : ordered) {
    int best = 0;
    for (int s = 1; s < out.num_shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    for (const RefId id : *refs) out.shard_of[id] = best;
    load[best] += static_cast<int64_t>(refs->size());
  }
  return out;
}

}  // namespace recon::shard
