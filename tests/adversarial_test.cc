// Failure-injection and adversarial-input tests: degenerate datasets the
// reconciler must survive with sane output (no crashes, no hangs, bounded
// damage).

#include <string>

#include <gtest/gtest.h>

#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "eval/metrics.h"
#include "model/dataset.h"

namespace recon {
namespace {

class AdversarialTest : public ::testing::Test {
 protected:
  AdversarialTest() : data_(BuildPimSchema()) {
    const Schema& s = data_.schema();
    person_ = s.RequireClass("Person");
    article_ = s.RequireClass("Article");
    venue_ = s.RequireClass("Venue");
    name_ = s.RequireAttribute(person_, "name");
    email_ = s.RequireAttribute(person_, "email");
    contact_ = s.RequireAttribute(person_, "emailContact");
    coauthor_ = s.RequireAttribute(person_, "coAuthor");
    title_ = s.RequireAttribute(article_, "title");
    authors_ = s.RequireAttribute(article_, "authoredBy");
  }

  RefId Person(int gold, const std::string& name,
               const std::string& email = "") {
    const RefId id = data_.NewReference(person_, gold);
    if (!name.empty()) data_.mutable_reference(id).AddAtomicValue(name_, name);
    if (!email.empty()) {
      data_.mutable_reference(id).AddAtomicValue(email_, email);
    }
    return id;
  }

  ReconcileResult Run() {
    const Reconciler reconciler(ReconcilerOptions::DepGraph());
    return reconciler.Run(data_);
  }

  Dataset data_;
  int person_, article_, venue_;
  int name_, email_, contact_, coauthor_, title_, authors_;
};

TEST_F(AdversarialTest, EmptyDataset) {
  const ReconcileResult result = Run();
  EXPECT_TRUE(result.cluster.empty());
  EXPECT_EQ(result.stats.num_nodes, 0);
}

TEST_F(AdversarialTest, SingleReference) {
  const RefId p = Person(0, "Eugene Wong");
  const ReconcileResult result = Run();
  EXPECT_EQ(result.cluster[p], p);
}

TEST_F(AdversarialTest, ReferencesWithNoAttributesStaySingletons) {
  for (int i = 0; i < 5; ++i) data_.NewReference(person_, i);
  const ReconcileResult result = Run();
  for (RefId id = 0; id < 5; ++id) EXPECT_EQ(result.cluster[id], id);
}

TEST_F(AdversarialTest, EveryoneHasTheSameFullName) {
  // 30 distinct entities, one name string. The key-less identical full
  // names collapse — that is the documented behaviour of full-name
  // equality — but it must terminate and produce one clean partition.
  for (int i = 0; i < 30; ++i) Person(i, "Wei Wang");
  const ReconcileResult result = Run();
  const PairMetrics m = EvaluateClass(data_, result.cluster, person_);
  EXPECT_EQ(m.num_partitions, 1);
}

TEST_F(AdversarialTest, SelfAssociationIsHarmless) {
  const RefId a = Person(0, "Eugene Wong");
  const RefId b = Person(0, "Eugene Wong");
  data_.mutable_reference(a).AddAssociation(contact_, a);  // Self link.
  data_.mutable_reference(a).AddAssociation(contact_, b);
  data_.mutable_reference(b).AddAssociation(contact_, b);
  const ReconcileResult result = Run();
  EXPECT_EQ(result.cluster[a], result.cluster[b]);
}

TEST_F(AdversarialTest, MutualContactCycle) {
  // A tight cycle of contacts between two clusters must not prevent
  // convergence.
  const RefId a1 = Person(0, "Eugene Wong", "ew@x.edu");
  const RefId a2 = Person(0, "Eugene Wong", "ew@x.edu");
  const RefId b1 = Person(1, "Robert Epstein", "re@x.edu");
  const RefId b2 = Person(1, "Robert Epstein", "re@x.edu");
  data_.mutable_reference(a1).AddAssociation(contact_, b1);
  data_.mutable_reference(b1).AddAssociation(contact_, a1);
  data_.mutable_reference(a2).AddAssociation(contact_, b2);
  data_.mutable_reference(b2).AddAssociation(contact_, a2);
  const ReconcileResult result = Run();
  EXPECT_EQ(result.cluster[a1], result.cluster[a2]);
  EXPECT_EQ(result.cluster[b1], result.cluster[b2]);
  EXPECT_NE(result.cluster[a1], result.cluster[b1]);
}

TEST_F(AdversarialTest, HugeMailingListContactsAreBounded) {
  // One "reference" (a mailing list) in contact with everyone must not
  // blow up association wiring (max_assoc_cross guard).
  const RefId list = Person(999, "dbgroup", "dbgroup@x.edu");
  for (int i = 0; i < 200; ++i) {
    const RefId p = Person(i, "Member" + std::to_string(i) + " Smith");
    data_.mutable_reference(list).AddAssociation(contact_, p);
    data_.mutable_reference(p).AddAssociation(contact_, list);
  }
  const ReconcileResult result = Run();
  EXPECT_EQ(static_cast<int>(result.cluster.size()), 201);
}

TEST_F(AdversarialTest, ArticleWithManyIdenticalAuthors) {
  // Extraction glitches can list the same author reference repeatedly;
  // the deduplicating Reference::AddAssociation plus the co-author
  // constraint must cope.
  const RefId p1 = Person(0, "Eugene Wong");
  const RefId p2 = Person(1, "Robert Epstein");
  const RefId a = data_.NewReference(article_, 50);
  data_.mutable_reference(a).AddAtomicValue(title_, "Query processing");
  for (int i = 0; i < 10; ++i) {
    data_.mutable_reference(a).AddAssociation(authors_, p1);
    data_.mutable_reference(a).AddAssociation(authors_, p2);
  }
  const ReconcileResult result = Run();
  EXPECT_NE(result.cluster[p1], result.cluster[p2]);  // Constraint 1.
}

TEST_F(AdversarialTest, PathologicallyLongValues) {
  const std::string long_name(5000, 'x');
  const RefId a = Person(0, long_name);
  const RefId b = Person(0, long_name);
  const ReconcileResult result = Run();
  // Identical 5000-char "names" parse as one giant token; no crash, and
  // they may or may not merge — both clusters must simply be valid.
  EXPECT_EQ(result.cluster[result.cluster[a]], result.cluster[a]);
  EXPECT_EQ(result.cluster[result.cluster[b]], result.cluster[b]);
}

TEST_F(AdversarialTest, ConflictingConstraintAndKeyEvidence) {
  // Same email (key: merge!) but contradictory full names (constraint 2
  // applies only *without* a shared email): the key must win, matching
  // the paper's rule.
  const RefId a = Person(0, "Mary Smith", "msmith@x.edu");
  const RefId b = Person(0, "Mary Jones", "msmith@x.edu");
  const ReconcileResult result = Run();
  EXPECT_EQ(result.cluster[a], result.cluster[b]);
}

TEST_F(AdversarialTest, IndepDecSurvivesTheSameInputs) {
  for (int i = 0; i < 10; ++i) Person(i, "Wei Wang");
  Person(11, "");  // Attribute-less.
  const RefId self = Person(12, "Loop Self");
  data_.mutable_reference(self).AddAssociation(contact_, self);
  const IndepDec baseline;
  const ReconcileResult result = baseline.Run(data_);
  EXPECT_EQ(static_cast<int>(result.cluster.size()),
            data_.num_references());
}

TEST_F(AdversarialTest, AllPairsNonMergeStillTerminates) {
  // Authors of one article are pairwise constrained; a large author list
  // creates a clique of non-merge nodes.
  const RefId a = data_.NewReference(article_, 50);
  data_.mutable_reference(a).AddAtomicValue(title_, "The committee paper");
  for (int i = 0; i < 40; ++i) {
    const RefId p = Person(i, "Alex Carter");  // All same name!
    data_.mutable_reference(a).AddAssociation(authors_, p);
  }
  const ReconcileResult result = Run();
  // The constraint keeps all 40 same-named co-authors apart.
  const PairMetrics m = EvaluateClass(data_, result.cluster, person_);
  EXPECT_EQ(m.num_partitions, 40);
}

}  // namespace
}  // namespace recon
