#include <gtest/gtest.h>

#include "datagen/pim_generator.h"
#include "model/text_io.h"

namespace recon {
namespace {

Dataset SampleDataset() {
  Dataset data(BuildPimSchema());
  const Schema& s = data.schema();
  const int person = s.RequireClass("Person");
  const int article = s.RequireClass("Article");
  const int name = s.RequireAttribute(person, "name");
  const int email = s.RequireAttribute(person, "email");
  const int contact = s.RequireAttribute(person, "emailContact");
  const int title = s.RequireAttribute(article, "title");
  const int authors = s.RequireAttribute(article, "authoredBy");

  const RefId p1 = data.NewReference(person, 1, Provenance::kEmail);
  data.mutable_reference(p1).AddAtomicValue(name, "Eugene Wong");
  data.mutable_reference(p1).AddAtomicValue(email, "eugene@berkeley.edu");
  const RefId p2 = data.NewReference(person, 2, Provenance::kBibtex);
  data.mutable_reference(p2).AddAtomicValue(name, "Wong,\tE.");  // Tab!
  data.mutable_reference(p1).AddAssociation(contact, p2);
  data.mutable_reference(p2).AddAssociation(contact, p1);

  const RefId a1 = data.NewReference(article, 3);
  data.mutable_reference(a1).AddAtomicValue(
      title, "Line\nbreaks \\ and backslashes");
  data.mutable_reference(a1).AddAssociation(authors, p1);
  data.mutable_reference(a1).AddAssociation(authors, p2);
  return data;
}

void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_references(), b.num_references());
  ASSERT_EQ(a.schema().num_classes(), b.schema().num_classes());
  for (int c = 0; c < a.schema().num_classes(); ++c) {
    EXPECT_EQ(a.schema().class_def(c).name, b.schema().class_def(c).name);
    ASSERT_EQ(a.schema().class_def(c).num_attributes(),
              b.schema().class_def(c).num_attributes());
  }
  for (RefId id = 0; id < a.num_references(); ++id) {
    const Reference& ra = a.reference(id);
    const Reference& rb = b.reference(id);
    ASSERT_EQ(ra.class_id(), rb.class_id()) << id;
    EXPECT_EQ(a.gold_entity(id), b.gold_entity(id)) << id;
    EXPECT_EQ(a.provenance(id), b.provenance(id)) << id;
    for (int attr = 0; attr < ra.num_attributes(); ++attr) {
      EXPECT_EQ(ra.atomic_values(attr), rb.atomic_values(attr)) << id;
      EXPECT_EQ(ra.associations(attr), rb.associations(attr)) << id;
    }
  }
}

TEST(TextIoTest, RoundTripsSampleDataset) {
  const Dataset original = SampleDataset();
  const std::string text = SerializeDataset(original);
  StatusOr<Dataset> parsed = ParseDataset(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectDatasetsEqual(original, parsed.value());
}

TEST(TextIoTest, RoundTripsGeneratedDataset) {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.02);
  const Dataset original = datagen::GeneratePim(config);
  StatusOr<Dataset> parsed = ParseDataset(SerializeDataset(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectDatasetsEqual(original, parsed.value());
}

TEST(TextIoTest, EscapesSpecialCharacters) {
  const std::string text = SerializeDataset(SampleDataset());
  // The literal tab and newline must not survive unescaped inside values.
  EXPECT_NE(text.find("Wong,\\tE."), std::string::npos);
  EXPECT_NE(text.find("Line\\nbreaks \\\\ and backslashes"),
            std::string::npos);
}

TEST(TextIoTest, RejectsMissingMagic) {
  EXPECT_FALSE(ParseDataset("class\tPerson\n").ok());
}

TEST(TextIoTest, RejectsUnknownClass) {
  const std::string text =
      "# recon dataset v1\nclass\tPerson\nref\tGhost\t0\tother\n";
  const auto result = ParseDataset(text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unknown class"),
            std::string::npos);
}

TEST(TextIoTest, RejectsValueBeforeRef) {
  const std::string text =
      "# recon dataset v1\nclass\tPerson\nattr\tPerson\tname\n"
      "a\tname\tEve\n";
  EXPECT_FALSE(ParseDataset(text).ok());
}

TEST(TextIoTest, RejectsLinkOutOfRange) {
  const std::string text =
      "# recon dataset v1\nclass\tPerson\nattr\tPerson\t*friend\tPerson\n"
      "ref\tPerson\t0\tother\nl\tfriend\t7\n";
  const auto result = ParseDataset(text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("out of range"),
            std::string::npos);
}

TEST(TextIoTest, RejectsKindMismatch) {
  const std::string text =
      "# recon dataset v1\nclass\tPerson\nattr\tPerson\tname\n"
      "ref\tPerson\t0\tother\nl\tname\t0\n";
  EXPECT_FALSE(ParseDataset(text).ok());
}

TEST(TextIoTest, ForwardLinksWork) {
  // A reference may link to a later one.
  const std::string text =
      "# recon dataset v1\nclass\tPerson\nattr\tPerson\t*friend\tPerson\n"
      "ref\tPerson\t0\tother\nl\tfriend\t1\nref\tPerson\t1\tother\n";
  const auto result = ParseDataset(text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().reference(0).associations(0),
            (std::vector<RefId>{1}));
}

TEST(TextIoTest, FileRoundTrip) {
  const Dataset original = SampleDataset();
  const std::string path = ::testing::TempDir() + "/recon_text_io_test.ds";
  ASSERT_TRUE(SaveDatasetToFile(original, path).ok());
  StatusOr<Dataset> loaded = LoadDatasetFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsEqual(original, loaded.value());
}

TEST(TextIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadDatasetFromFile("/nonexistent/nope.ds").ok());
}

}  // namespace
}  // namespace recon
