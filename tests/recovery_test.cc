// Crash-recovery tests for the service durability subsystem (DESIGN.md
// §15): a deterministic workload is driven against a durable service with
// an I/O fault injected at every individual WAL/checkpoint operation, the
// "crashed" service is reopened, and the recovered partition must be
// byte-identical to what the fault-free oracle published at the recovered
// generation — at every fault point, every fault kind, and every thread
// count. Resuming the remaining workload must then land on the oracle's
// final state, so recovery is not just consistent but *continuable*.
//
// The determinism this leans on: the reconciler's state is a function of
// (reference batches, flush-epoch boundaries) alone — PR-8's canonical
// commit order makes it thread-count invariant — so "byte-identical" is a
// meaningful, testable contract, not a statistical one.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "model/dataset.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "service/snapshot.h"
#include "service/wal.h"
#include "util/fault_injection.h"

namespace recon::service {
namespace {

// ---- Scratch directories ---------------------------------------------------

/// mkdtemp-backed scratch dir, recursively removed on destruction.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/recon-recovery-XXXXXX";
    char* made = ::mkdtemp(tmpl);
    RECON_CHECK(made != nullptr);
    path_ = made;
  }
  ~TempDir() {
    // Only our own flat files live here; no recursion needed.
    StatusOr<DataDirState> state = ScanDataDir(path_);
    if (state.ok()) {
      for (const auto& p : state.value().checkpoint_paths) ::remove(p.c_str());
      for (const auto& p : state.value().wal_paths) ::remove(p.c_str());
      for (const auto& p : state.value().tmp_paths) ::remove(p.c_str());
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---- The deterministic workload --------------------------------------------

/// One primitive durable operation, mirroring exactly one WAL record:
/// either a staged batch (kBatch) or a flush boundary (kFlush). Driving
/// the service with this stream reproduces the same WAL byte-for-byte, so
/// any crash leaves a durable *prefix* of the stream and resumption is
/// simply "replay the suffix".
struct Op {
  bool flush = false;
  std::vector<Reference> refs;
  std::vector<int> golds;
};

/// Initial dataset: four persons, two of them the same Alice (golds say
/// so), checkpointed as generation 0.
Dataset InitialDataset() {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  const int name = data.schema().RequireAttribute(person, "name");
  const int email = data.schema().RequireAttribute(person, "email");
  auto add = [&](const char* n, const char* e, int gold) {
    const RefId id = data.NewReference(person, gold);
    data.mutable_reference(id).AddAtomicValue(name, n);
    data.mutable_reference(id).AddAtomicValue(email, e);
  };
  add("Alice Smith", "alice@x.edu", 0);
  add("A. Smith", "alice@x.edu", 0);
  add("Bob Jones", "bob@y.edu", 1);
  add("Carla Ruiz", "carla@z.org", 2);
  return data;
}

Reference Person(const Schema& schema, const std::string& name,
                 const std::string& email,
                 const std::vector<RefId>& contacts = {}) {
  const int person = schema.RequireClass("Person");
  Reference ref(person, schema.class_def(person).num_attributes());
  ref.AddAtomicValue(schema.RequireAttribute(person, "name"), name);
  if (!email.empty()) {
    ref.AddAtomicValue(schema.RequireAttribute(person, "email"), email);
  }
  const int contact = schema.RequireAttribute(person, "emailContact");
  for (const RefId target : contacts) ref.AddAssociation(contact, target);
  return ref;
}

Reference Article(const Schema& schema, const std::string& title,
                  const std::vector<RefId>& authors) {
  const int article = schema.RequireClass("Article");
  Reference ref(article, schema.class_def(article).num_attributes());
  ref.AddAtomicValue(schema.RequireAttribute(article, "title"), title);
  const int by = schema.RequireAttribute(article, "authoredBy");
  for (const RefId target : authors) ref.AddAssociation(by, target);
  return ref;
}

/// ~20 references over 7 batches and 6 flush boundaries: duplicate
/// persons that must merge (same email, name variants), articles whose
/// authoredBy associations feed the dependency graph, a batch left staged
/// across a flush, and a final multi-batch epoch. RefIds are absolute
/// (initial dataset holds 0..3), which keeps association targets valid on
/// every replay.
std::vector<Op> BuildWorkload(const Schema& schema) {
  std::vector<Op> ops;
  auto batch = [&](std::vector<Reference> refs, std::vector<int> golds = {}) {
    Op op;
    op.refs = std::move(refs);
    op.golds = std::move(golds);
    ops.push_back(std::move(op));
  };
  auto flush = [&]() {
    Op op;
    op.flush = true;
    ops.push_back(std::move(op));
  };

  // Refs 4-5: another Alice spelling plus a fresh Dave.
  batch({Person(schema, "Alice M. Smith", "alice@x.edu"),
         Person(schema, "Dave Hill", "dave@w.net")});
  flush();  // Generation 1.
  // Refs 6-8: Bob duplicate, a contact edge onto Alice, unlabeled Erin.
  batch({Person(schema, "Robert Jones", "bob@y.edu"),
         Person(schema, "B. Jones", "bob@y.edu", /*contacts=*/{0}),
         Person(schema, "Erin Woo", "erin@q.io")},
        {-1, -1, -1});
  flush();  // Generation 2.
  // Refs 9-10: articles linking authors (dependency-graph evidence).
  batch({Article(schema, "Reference Reconciliation in Complex Spaces",
                 {0, 2}),
         Article(schema, "Reference Reconciliation in Complex Spaces",
                 {4, 6})});
  flush();  // Generation 3.
  // Refs 11-12: staged but not flushed yet...
  batch({Person(schema, "Carla R.", "carla@z.org"),
         Person(schema, "Dave Hill", "dave@w.net")});
  // Refs 13-14: ...then a second batch joins the same epoch.
  batch({Person(schema, "Frank Ma", "frank@p.edu", /*contacts=*/{5, 8}),
         Article(schema, "Canopy Clustering at Scale", {8, 13})});
  flush();  // Generation 4.
  // Refs 15-16.
  batch({Person(schema, "E. Woo", "erin@q.io"),
         Person(schema, "Grace Liu", "grace@r.org")});
  flush();  // Generation 5.
  // Refs 17-19: one more epoch so several checkpoints happen at
  // checkpoint_every=2.
  batch({Person(schema, "G. Liu", "grace@r.org"),
         Article(schema, "Canopy Clustering at Scale", {15, 17}),
         Person(schema, "Hank Obi", "hank@s.edu")});
  flush();  // Generation 6.
  return ops;
}

int InitialRefs() { return 4; }

// ---- Fingerprints and drivers ----------------------------------------------

ServiceOptions MakeOptions(const std::string& data_dir, FsyncPolicy fsync,
                           int checkpoint_every, int threads,
                           std::shared_ptr<IoFaultHook> hook = nullptr) {
  ServiceOptions options;
  options.reconciler = ReconcilerOptions::DepGraph();
  options.reconciler.num_threads = threads;
  options.durability.data_dir = data_dir;
  options.durability.fsync = fsync;
  options.durability.checkpoint_every = checkpoint_every;
  options.durability.io_fault = std::move(hook);
  return options;
}

/// The byte-identity witness: generation plus the full ref -> entity map.
std::string Fingerprint(const Snapshot& snapshot) {
  std::string out = "g" + std::to_string(snapshot.generation()) + ":";
  for (RefId id = 0; id < snapshot.num_references(); ++id) {
    out += std::to_string(snapshot.EntityOfRef(id));
    out += ',';
  }
  return out;
}

struct Oracle {
  /// Fingerprint of the published snapshot at each generation 0..G.
  std::map<uint64_t, std::string> by_generation;
  std::string final_fingerprint;
  int64_t total_io_ops = 0;
};

/// Drives the full workload fault-free and records the per-generation
/// fingerprints the recovered states must reproduce, plus the total
/// durable-op count that sizes the crash sweep.
Oracle RunOracle(FsyncPolicy fsync, int checkpoint_every, int threads) {
  TempDir dir;
  auto counter = std::make_shared<IoFaultInjector>(IoFault::kNone, -1);
  auto opened = ReconService::Open(
      InitialDataset(),
      MakeOptions(dir.path(), fsync, checkpoint_every, threads, counter));
  RECON_CHECK(opened.ok()) << opened.status().ToString();
  auto& service = *opened.value();
  Oracle oracle;
  oracle.by_generation[0] = Fingerprint(*service.snapshot());
  for (const Op& op : BuildWorkload(service.schema())) {
    if (op.flush) {
      const auto generation = service.Flush();
      RECON_CHECK(generation.ok());
      oracle.by_generation[generation.value()] =
          Fingerprint(*service.snapshot());
    } else {
      RECON_CHECK(service.Ingest(op.refs, op.golds, false).ok());
    }
  }
  oracle.final_fingerprint = Fingerprint(*service.snapshot());
  oracle.total_io_ops = counter->ops();
  // The tiny workload must already exercise every durable-op kind, or the
  // sweep below proves less than it claims.
  for (int op = 0; op < kNumIoOps; ++op) {
    RECON_CHECK(counter->seen(static_cast<IoOp>(op)) > 0)
        << "workload never reaches " << IoOpName(static_cast<IoOp>(op));
  }
  return oracle;
}

struct CrashRun {
  uint64_t acked_generation = 0;  ///< Last generation an OK call reported.
  bool failed = false;            ///< The fault surfaced as an error.
};

/// Drives the workload until the injected fault kills it (destruction
/// without Seal == the crash itself).
CrashRun DriveWithFault(const std::string& data_dir, FsyncPolicy fsync,
                        int checkpoint_every, int threads, IoFault fault,
                        int64_t fire_at) {
  auto injector = std::make_shared<IoFaultInjector>(fault, fire_at);
  CrashRun run;
  auto opened = ReconService::Open(
      InitialDataset(),
      MakeOptions(data_dir, fsync, checkpoint_every, threads, injector));
  if (!opened.ok()) {
    run.failed = true;  // Crashed during init; nothing was acknowledged.
    return run;
  }
  auto& service = *opened.value();
  for (const Op& op : BuildWorkload(service.schema())) {
    if (op.flush) {
      const auto generation = service.Flush();
      if (!generation.ok()) {
        run.failed = true;
        break;
      }
      run.acked_generation = generation.value();
    } else {
      if (!service.Ingest(op.refs, op.golds, false).ok()) {
        run.failed = true;
        break;
      }
    }
  }
  return run;
}

/// Reopens the crashed directory fault-free, checks the recovered state
/// against the oracle, resumes the un-applied suffix of the workload, and
/// checks the final state. `recover_threads` may differ from the thread
/// count that produced the WAL: recovery must be thread-count invariant.
void RecoverAndVerify(const std::string& data_dir, const Oracle& oracle,
                      const CrashRun& run, FsyncPolicy fsync,
                      int checkpoint_every, int recover_threads,
                      const std::string& context) {
  // A crash before anything became durable leaves an empty dir; reopening
  // is then a fresh init from the CLI dataset, not a recovery — and
  // nothing can have been acknowledged.
  StatusOr<DataDirState> pre = ScanDataDir(data_dir);
  ASSERT_TRUE(pre.ok()) << context;
  const bool had_state = !pre.value().empty();
  if (!had_state) {
    ASSERT_EQ(run.acked_generation, 0u) << context;
  }
  auto opened = ReconService::Open(
      InitialDataset(),
      MakeOptions(data_dir, fsync, checkpoint_every, recover_threads));
  ASSERT_TRUE(opened.ok()) << context << ": " << opened.status().ToString();
  auto& service = *opened.value();
  const auto snapshot = service.snapshot();
  const uint64_t generation = snapshot->generation();

  // Acknowledged flushes must survive the crash (acked implies durable).
  EXPECT_GE(generation, run.acked_generation) << context;

  // The recovered snapshot is byte-identical to what the fault-free oracle
  // published at this generation.
  const auto expected = oracle.by_generation.find(generation);
  ASSERT_TRUE(expected != oracle.by_generation.end())
      << context << ": recovered unknown generation " << generation;
  EXPECT_EQ(Fingerprint(*snapshot), expected->second) << context;

  // The durable state is an exact prefix of the op stream: walk the
  // workload until the observed (references, generation) pair is consumed.
  const std::vector<Op> ops = BuildWorkload(service.schema());
  const int present =
      snapshot->num_references() + service.staged_references();
  int refs = InitialRefs();
  uint64_t flushed = 0;
  size_t next = 0;
  for (; next < ops.size(); ++next) {
    if (ops[next].flush) {
      if (flushed + 1 > generation) break;
      ++flushed;
    } else {
      if (refs + static_cast<int>(ops[next].refs.size()) > present) break;
      refs += static_cast<int>(ops[next].refs.size());
    }
  }
  ASSERT_EQ(flushed, generation) << context << ": not a prefix of the stream";
  ASSERT_EQ(refs, present) << context << ": not a prefix of the stream";

  // Resume the suffix; the service must land exactly on the oracle's end
  // state, proving the recovered WAL is fit for continued appends.
  for (; next < ops.size(); ++next) {
    if (ops[next].flush) {
      ASSERT_TRUE(service.Flush().ok()) << context;
    } else {
      ASSERT_TRUE(service.Ingest(ops[next].refs, ops[next].golds, false).ok())
          << context;
    }
  }
  EXPECT_EQ(Fingerprint(*service.snapshot()), oracle.final_fingerprint)
      << context;
  EXPECT_EQ(service.durability_stats().recovered, had_state) << context;
}

/// One full crash-recover-resume cycle at one fault point.
void SweepPoint(const Oracle& oracle, FsyncPolicy fsync, int checkpoint_every,
                int drive_threads, int recover_threads, IoFault fault,
                int64_t fire_at) {
  TempDir dir;
  const std::string context =
      "fault=" + std::to_string(static_cast<int>(fault)) +
      " fire_at=" + std::to_string(fire_at) +
      " drive_threads=" + std::to_string(drive_threads) +
      " recover_threads=" + std::to_string(recover_threads);
  const CrashRun run = DriveWithFault(dir.path(), fsync, checkpoint_every,
                                      drive_threads, fault, fire_at);
  RecoverAndVerify(dir.path(), oracle, run, fsync, checkpoint_every,
                   recover_threads, context);
}

// ---- The sweeps ------------------------------------------------------------

constexpr int kCheckpointEvery = 2;

TEST(RecoveryTest, CrashSweepEveryIoOp) {
  // every-record: every acknowledged call is durable, and a crash at any
  // single durable op must recover to a verified oracle state.
  const Oracle oracle = RunOracle(FsyncPolicy::kEveryRecord, kCheckpointEvery,
                                  /*threads=*/1);
  ASSERT_GT(oracle.total_io_ops, 20);
  for (int64_t at = 0; at < oracle.total_io_ops; ++at) {
    SweepPoint(oracle, FsyncPolicy::kEveryRecord, kCheckpointEvery, 1, 1,
               IoFault::kCrash, at);
  }
}

TEST(RecoveryTest, TornWriteSweepEveryIoOp) {
  const Oracle oracle = RunOracle(FsyncPolicy::kEveryRecord, kCheckpointEvery,
                                  /*threads=*/1);
  for (int64_t at = 0; at < oracle.total_io_ops; ++at) {
    SweepPoint(oracle, FsyncPolicy::kEveryRecord, kCheckpointEvery, 1, 1,
               IoFault::kTornWrite, at);
  }
}

TEST(RecoveryTest, IoErrorSweepEveryIoOp) {
  // kError: the op fails but the process survives read-only; we still
  // "crash" it (destroy without seal) and recovery must hold.
  const Oracle oracle = RunOracle(FsyncPolicy::kEveryRecord, kCheckpointEvery,
                                  /*threads=*/1);
  for (int64_t at = 0; at < oracle.total_io_ops; ++at) {
    SweepPoint(oracle, FsyncPolicy::kEveryRecord, kCheckpointEvery, 1, 1,
               IoFault::kError, at);
  }
}

TEST(RecoveryTest, CrashSweepAcrossThreadCounts) {
  // The oracle fingerprints were recorded at threads=1; driving, crashing,
  // and recovering at 2/4/8 threads must reproduce them bit for bit
  // (PR-8 canonical order). Strided so the three counts together still
  // cover every fault index.
  const Oracle oracle = RunOracle(FsyncPolicy::kEveryRecord, kCheckpointEvery,
                                  /*threads=*/1);
  const int threads[] = {2, 4, 8};
  for (int t = 0; t < 3; ++t) {
    for (int64_t at = t; at < oracle.total_io_ops; at += 3) {
      SweepPoint(oracle, FsyncPolicy::kEveryRecord, kCheckpointEvery,
                 threads[t], threads[(t + 1) % 3], IoFault::kCrash, at);
    }
  }
}

TEST(RecoveryTest, CrashSweepEveryFlushPolicy) {
  // every-flush: batch records may be lost with the tail (only flush
  // boundaries are sync barriers), but acked *generations* must survive
  // and the recovered state must still be an oracle state. Op count
  // differs from every-record (fewer syncs), so size its own sweep.
  const Oracle oracle = RunOracle(FsyncPolicy::kEveryFlush, kCheckpointEvery,
                                  /*threads=*/1);
  for (int64_t at = 0; at < oracle.total_io_ops; ++at) {
    SweepPoint(oracle, FsyncPolicy::kEveryFlush, kCheckpointEvery, 1, 1,
               IoFault::kCrash, at);
  }
}

// ---- Targeted scenarios ----------------------------------------------------

TEST(RecoveryTest, CleanSealRestartIsCleanAndIdentical) {
  const Oracle oracle = RunOracle(FsyncPolicy::kEveryFlush, kCheckpointEvery,
                                  /*threads=*/1);
  TempDir dir;
  {
    auto opened = ReconService::Open(
        InitialDataset(),
        MakeOptions(dir.path(), FsyncPolicy::kEveryFlush, kCheckpointEvery, 1));
    ASSERT_TRUE(opened.ok());
    auto& service = *opened.value();
    for (const Op& op : BuildWorkload(service.schema())) {
      if (op.flush) {
        ASSERT_TRUE(service.Flush().ok());
      } else {
        ASSERT_TRUE(service.Ingest(op.refs, op.golds, false).ok());
      }
    }
    ASSERT_TRUE(service.Seal().ok());
  }
  auto reopened = ReconService::Open(
      InitialDataset(),
      MakeOptions(dir.path(), FsyncPolicy::kEveryFlush, kCheckpointEvery, 4));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& service = *reopened.value();
  EXPECT_EQ(Fingerprint(*service.snapshot()), oracle.final_fingerprint);
  const DurabilityStats stats = service.durability_stats();
  EXPECT_TRUE(stats.recovered);
  EXPECT_TRUE(stats.recovered_clean);
}

TEST(RecoveryTest, TornTailIsTruncatedAndOverwritten) {
  TempDir dir;
  uint64_t generation = 0;
  {
    auto opened = ReconService::Open(
        InitialDataset(), MakeOptions(dir.path(), FsyncPolicy::kEveryRecord,
                                      /*checkpoint_every=*/0, 1));
    ASSERT_TRUE(opened.ok());
    auto& service = *opened.value();
    std::vector<Reference> refs;
    refs.push_back(Person(service.schema(), "Ida Novak", "ida@t.cz"));
    ASSERT_TRUE(service.Ingest(std::move(refs), {}, true).ok());
    generation = service.snapshot()->generation();
  }
  // Scribble a torn record onto the live WAL: a plausible length prefix
  // followed by garbage, as a crash mid-append would leave.
  StatusOr<DataDirState> state = ScanDataDir(dir.path());
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state.value().wal_paths.size(), 1u);
  {
    FILE* f = ::fopen(state.value().wal_paths[0].c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x40\x00\x00\x00\xde\xad\xbe\xefxxxx";
    ASSERT_EQ(::fwrite(garbage, 1, sizeof(garbage), f), sizeof(garbage));
    ::fclose(f);
  }
  auto reopened = ReconService::Open(
      InitialDataset(), MakeOptions(dir.path(), FsyncPolicy::kEveryRecord,
                                    /*checkpoint_every=*/0, 1));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& service = *reopened.value();
  EXPECT_EQ(service.snapshot()->generation(), generation);
  EXPECT_GT(service.durability_stats().wal_truncated_bytes, 0);
  // The truncated tail position is writable again: appends go through and
  // survive another restart.
  std::vector<Reference> refs;
  refs.push_back(Person(service.schema(), "Jan Kowal", "jan@u.pl"));
  ASSERT_TRUE(service.Ingest(std::move(refs), {}, true).ok());
}

TEST(RecoveryTest, FailedFsyncMakesServiceReadOnly) {
  TempDir dir;
  // Fire an I/O error on the 3rd WAL sync *after* startup settles; the
  // exact op doesn't matter, only that it hits mid-workload.
  auto injector = std::make_shared<IoFaultInjector>(IoFault::kError, 12);
  auto opened = ReconService::Open(
      InitialDataset(), MakeOptions(dir.path(), FsyncPolicy::kEveryRecord,
                                    /*checkpoint_every=*/0, 1, injector));
  ASSERT_TRUE(opened.ok());
  auto& service = *opened.value();
  uint64_t last_ok = 0;
  bool failed = false;
  for (const Op& op : BuildWorkload(service.schema())) {
    if (op.flush) {
      const auto generation = service.Flush();
      if (!generation.ok()) {
        EXPECT_EQ(generation.status().code(), StatusCode::kFailedPrecondition);
        failed = true;
        break;
      }
      last_ok = generation.value();
    } else if (!service.Ingest(op.refs, op.golds, false).ok()) {
      failed = true;
      break;
    }
  }
  ASSERT_TRUE(failed);
  // Sticky: later writes are refused without touching memory...
  std::vector<Reference> refs;
  refs.push_back(Person(service.schema(), "Kim Lee", "kim@v.kr"));
  const auto rejected = service.Ingest(std::move(refs), {}, true);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(service.durability_stats().write_failed);
  EXPECT_FALSE(service.Seal().ok());
  // ...but reads keep serving the last published snapshot.
  ReconQuery query;
  query.text = "Alice Smith";
  query.type = "Person";
  EXPECT_FALSE(service.Reconcile({query}).results.empty());
  EXPECT_GE(service.snapshot()->generation(), last_ok);
}

TEST(RecoveryTest, CheckpointsCompactTheDataDir) {
  TempDir dir;
  {
    auto opened = ReconService::Open(
        InitialDataset(), MakeOptions(dir.path(), FsyncPolicy::kEveryFlush,
                                      /*checkpoint_every=*/1, 1));
    ASSERT_TRUE(opened.ok());
    auto& service = *opened.value();
    for (const Op& op : BuildWorkload(service.schema())) {
      if (op.flush) {
        ASSERT_TRUE(service.Flush().ok());
      } else {
        ASSERT_TRUE(service.Ingest(op.refs, op.golds, false).ok());
      }
    }
  }
  // checkpoint_every=1: after every flush the WAL rotates and stale files
  // are retired, so exactly one (checkpoint, wal) pair remains.
  StatusOr<DataDirState> state = ScanDataDir(dir.path());
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state.value().checkpoint_paths.size(), 1u);
  ASSERT_EQ(state.value().wal_paths.size(), 1u);
  EXPECT_TRUE(state.value().tmp_paths.empty());
  EXPECT_EQ(state.value().checkpoint_generations[0], 6u);
  EXPECT_EQ(state.value().wal_generations[0], 6u);
  // And that single pair carries the whole state.
  const Oracle oracle = RunOracle(FsyncPolicy::kEveryFlush, 1, 1);
  auto reopened = ReconService::Open(
      InitialDataset(),
      MakeOptions(dir.path(), FsyncPolicy::kEveryFlush, 1, 2));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Fingerprint(*reopened.value()->snapshot()),
            oracle.final_fingerprint);
}

TEST(RecoveryTest, RecoveryIgnoresTheProvidedDataset) {
  TempDir dir;
  {
    auto opened = ReconService::Open(
        InitialDataset(),
        MakeOptions(dir.path(), FsyncPolicy::kEveryFlush, 0, 1));
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened.value()->Seal().ok());
  }
  // Reopen with a *different* (empty) dataset: state must come from disk.
  Dataset unrelated(BuildPimSchema());
  auto reopened = ReconService::Open(
      std::move(unrelated),
      MakeOptions(dir.path(), FsyncPolicy::kEveryFlush, 0, 1));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->snapshot()->num_references(), InitialRefs());
}

TEST(RecoveryTest, CorruptCheckpointIsRefusedDistinctly) {
  TempDir dir;
  {
    auto opened = ReconService::Open(
        InitialDataset(),
        MakeOptions(dir.path(), FsyncPolicy::kEveryFlush, 0, 1));
    ASSERT_TRUE(opened.ok());
  }
  StatusOr<DataDirState> state = ScanDataDir(dir.path());
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state.value().checkpoint_paths.size(), 1u);
  // Flip one payload byte: the CRC must catch it, and with no surviving
  // checkpoint the service must refuse with kFailedPrecondition — the
  // "corrupt beyond recovery" contract callers map to a distinct exit
  // code — rather than serve silently wrong clusters.
  {
    FILE* f = ::fopen(state.value().checkpoint_paths[0].c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::fseek(f, 64, SEEK_SET), 0);
    const int c = ::fgetc(f);
    ASSERT_EQ(::fseek(f, 64, SEEK_SET), 0);
    ::fputc(c ^ 0xFF, f);
    ::fclose(f);
  }
  auto reopened = ReconService::Open(
      InitialDataset(),
      MakeOptions(dir.path(), FsyncPolicy::kEveryFlush, 0, 1));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, WalOutlivingEveryCheckpointIsRefused) {
  TempDir dir;
  std::string checkpoint0;  // checkpoint-0 bytes, saved before rotation.
  {
    auto opened = ReconService::Open(
        InitialDataset(), MakeOptions(dir.path(), FsyncPolicy::kEveryFlush,
                                      /*checkpoint_every=*/1, 1));
    ASSERT_TRUE(opened.ok());
    auto& service = *opened.value();
    {
      FILE* f = ::fopen((dir.path() + "/" + CheckpointFileName(0)).c_str(),
                        "rb");
      ASSERT_NE(f, nullptr);
      char chunk[4096];
      size_t n;
      while ((n = ::fread(chunk, 1, sizeof(chunk), f)) > 0) {
        checkpoint0.append(chunk, n);
      }
      ::fclose(f);
    }
    std::vector<Reference> refs;
    refs.push_back(Person(service.schema(), "Lena Mars", "lena@o.de"));
    ASSERT_TRUE(service.Ingest(std::move(refs), {}, true).ok());
  }
  // Rotation left (checkpoint-1, wal-1). Delete checkpoint-1 and put the
  // stale checkpoint-0 back: wal-1 now outlives every usable checkpoint,
  // its base state is gone, and recovery must refuse rather than guess.
  StatusOr<DataDirState> state = ScanDataDir(dir.path());
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state.value().wal_generations[0], 1u);
  ASSERT_EQ(state.value().checkpoint_generations[0], 1u);
  ASSERT_EQ(::remove(state.value().checkpoint_paths[0].c_str()), 0);
  {
    FILE* f = ::fopen((dir.path() + "/" + CheckpointFileName(0)).c_str(),
                      "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::fwrite(checkpoint0.data(), 1, checkpoint0.size(), f),
              checkpoint0.size());
    ::fclose(f);
  }
  auto reopened = ReconService::Open(
      InitialDataset(),
      MakeOptions(dir.path(), FsyncPolicy::kEveryFlush, 1, 1));
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace recon::service
