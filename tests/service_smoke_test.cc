// End-to-end smoke test of the reconciliation daemon over real loopback
// HTTP: an in-process HttpServer on an ephemeral port, a raw-socket client
// (HttpFetch), and the full route surface — manifest, reconcile (three
// transports), ingest with a generation bump, entity lookup, health,
// stats, the error paths, overload shedding, and (against the real
// reconcile_serve binary) SIGTERM graceful drain + WAL seal. Labeled
// `asan` (tools/check_asan.sh): the request parsing and connection
// handling must hold up under -DRECON_SANITIZE=address-undefined.

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "service/checkpoint.h"
#include "service/handlers.h"
#include "service/http.h"
#include "service/service.h"
#include "service/wal.h"
#include "util/json.h"

namespace recon::service {
namespace {

Dataset SmokeDataset() {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  const int name = data.schema().RequireAttribute(person, "name");
  const int email = data.schema().RequireAttribute(person, "email");
  const RefId a = data.NewReference(person, 0);
  data.mutable_reference(a).AddAtomicValue(name, "Grace Hopper");
  data.mutable_reference(a).AddAtomicValue(email, "grace@navy.mil");
  const RefId b = data.NewReference(person, 1);
  data.mutable_reference(b).AddAtomicValue(name, "Alan Kay");
  data.mutable_reference(b).AddAtomicValue(email, "kay@parc.com");
  return data;
}

/// Server + service wired once for the whole suite (starting a reconciler
/// per test would dominate runtime).
class ServiceSmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ServiceOptions options;
    options.reconciler = ReconcilerOptions::DepGraph();
    service_ = new ReconService(SmokeDataset(), options);
    handler_ = new ServiceHandler(service_);
    server_ = new HttpServer(
        [](const HttpRequest& req) { return handler_->Handle(req); },
        /*num_threads=*/2);
    ASSERT_TRUE(server_->Start(/*port=*/0).ok());
    ASSERT_GT(server_->port(), 0);
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    delete handler_;
    delete service_;
    server_ = nullptr;
    handler_ = nullptr;
    service_ = nullptr;
  }

  static json::Value FetchJson(const std::string& method,
                               const std::string& target,
                               const std::string& body, int expect_status) {
    const auto res = HttpFetch(server_->port(), method, target, body);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    if (!res.ok()) return json::Value();
    EXPECT_EQ(res.value().status, expect_status) << res.value().body;
    const auto doc = json::Parse(res.value().body);
    EXPECT_TRUE(doc.ok()) << res.value().body;
    return doc.ok() ? doc.value() : json::Value();
  }

  static ReconService* service_;
  static ServiceHandler* handler_;
  static HttpServer* server_;
};

ReconService* ServiceSmokeTest::service_ = nullptr;
ServiceHandler* ServiceSmokeTest::handler_ = nullptr;
HttpServer* ServiceSmokeTest::server_ = nullptr;

TEST_F(ServiceSmokeTest, HealthzReportsVersionAndGeneration) {
  const json::Value doc = FetchJson("GET", "/healthz", "", 200);
  EXPECT_EQ(doc.at("status").AsString(), "ok");
  EXPECT_FALSE(doc.at("version").AsString().empty());
  EXPECT_FALSE(doc.at("build").AsString().empty());
  EXPECT_GE(doc.at("entities").AsInt(), 2);
}

TEST_F(ServiceSmokeTest, ManifestListsTypes) {
  const json::Value doc = FetchJson("GET", "/", "", 200);
  EXPECT_FALSE(doc.at("name").AsString().empty());
  EXPECT_EQ(doc.at("defaultTypes").size(), 3u);  // Person, Article, Venue.
}

TEST_F(ServiceSmokeTest, ReconcilePostJsonBody) {
  const json::Value doc = FetchJson(
      "POST", "/reconcile",
      R"({"q0": {"query": "Grace Hopper", "type": "Person"}})", 200);
  const json::Value& result = doc.at("q0").at("result");
  ASSERT_GE(result.size(), 1u);
  EXPECT_EQ(result.items()[0].at("name").AsString(), "Grace Hopper");
  EXPECT_TRUE(result.items()[0].at("match").AsBool());
}

TEST_F(ServiceSmokeTest, ReconcileFormAndUrlTransports) {
  // urlencoded form body, as OpenRefine sends it.
  const std::string form =
      "queries=%7B%22q0%22%3A%7B%22query%22%3A%22Grace+Hopper%22%2C"
      "%22type%22%3A%22Person%22%7D%7D";
  const json::Value via_form = FetchJson("POST", "/reconcile", form, 200);
  EXPECT_GE(via_form.at("q0").at("result").size(), 1u);
  // Same batch through the URL parameter.
  const json::Value via_url =
      FetchJson("GET", "/reconcile?" + form, "", 200);
  EXPECT_GE(via_url.at("q0").at("result").size(), 1u);
}

TEST_F(ServiceSmokeTest, IngestBumpsGenerationAndServesNewEntity) {
  const json::Value before = FetchJson("GET", "/healthz", "", 200);
  const int64_t generation = before.at("generation").AsInt();

  const json::Value report = FetchJson(
      "POST", "/ingest",
      R"({"references": [{"class": "Person",
                          "values": {"name": ["Radia Perlman"],
                                     "email": ["radia@dec.com"]}}],
          "flush": true})",
      200);
  EXPECT_EQ(report.at("added").AsInt(), 1);
  EXPECT_TRUE(report.at("flushed").AsBool());
  EXPECT_EQ(report.at("generation").AsInt(), generation + 1);

  const json::Value doc = FetchJson(
      "POST", "/reconcile",
      R"({"q": {"query": "Radia Perlman", "type": "Person"}})", 200);
  ASSERT_GE(doc.at("q").at("result").size(), 1u);
  EXPECT_EQ(doc.at("q").at("result").items()[0].at("name").AsString(),
            "Radia Perlman");
  EXPECT_EQ(doc.at("_snapshot").AsInt(), generation + 1);
}

TEST_F(ServiceSmokeTest, EntityLookup) {
  const json::Value doc = FetchJson("GET", "/entity/e0", "", 200);
  EXPECT_EQ(doc.at("id").AsString(), "e0");
  EXPECT_FALSE(doc.at("name").AsString().empty());
  EXPECT_GE(doc.at("members").size(), 1u);
  FetchJson("GET", "/entity/e99999", "", 404);
  FetchJson("GET", "/entity/not-an-id", "", 404);
}

TEST_F(ServiceSmokeTest, StatsCountTraffic) {
  // Each gtest case runs in its own process under ctest: generate the
  // traffic this test counts.
  FetchJson("POST", "/reconcile",
            R"({"q": {"query": "Grace Hopper", "type": "Person"}})", 200);
  const json::Value doc = FetchJson("GET", "/stats", "", 200);
  EXPECT_GE(doc.at("counters").at("queries").AsInt(), 1);
  EXPECT_GE(doc.at("snapshot").at("entities").AsInt(), 2);
  EXPECT_GT(doc.at("snapshot").at("blocking_keys").AsInt(), 0);
}

TEST_F(ServiceSmokeTest, ErrorPaths) {
  FetchJson("GET", "/no/such/route", "", 404);
  FetchJson("POST", "/reconcile", "{broken json", 400);
  FetchJson("POST", "/ingest", R"({"flush": true})", 400);
  FetchJson("GET", "/ingest", "", 405);
  FetchJson("POST", "/ingest",
            R"({"references": [{"class": "Spaceship"}]})", 400);
}

TEST_F(ServiceSmokeTest, ResponsesCarrySnapshotGenerationHeader) {
  const auto res = HttpFetch(server_->port(), "GET", "/healthz");
  ASSERT_TRUE(res.ok());
  bool found = false;
  for (const auto& [name, value] : res.value().extra_headers) {
    if (name == "x-snapshot-generation") found = !value.empty();
  }
  EXPECT_TRUE(found);
}

TEST_F(ServiceSmokeTest, IngestMalformedJsonReportsByteOffset) {
  // The parser's position must reach the client — "bad request" alone
  // sends the caller grepping megabyte payloads by hand.
  const auto res = HttpFetch(server_->port(), "POST", "/ingest",
                             R"({"references": [}])");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().status, 400);
  EXPECT_NE(res.value().body.find("at byte"), std::string::npos)
      << res.value().body;
}

// ---- Overload shedding (DESIGN.md §15) -------------------------------------

TEST(HttpOverloadTest, ShedsWith503AndRetryAfterWhenSaturated) {
  // A handler parked on a latch pins the single admission slot, making
  // "saturated" a deterministic state instead of a race to be won.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  HttpServerOptions options;
  options.num_threads = 2;
  options.max_inflight = 1;
  HttpServer server(
      [&](const HttpRequest&) {
        entered.fetch_add(1);
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
        HttpResponse res;
        res.body = R"({"ok": true})";
        return res;
      },
      options);
  ASSERT_TRUE(server.Start(0).ok());

  std::thread slow([&server] {
    const auto res = HttpFetch(server.port(), "GET", "/slow");
    // The admitted request is never shed, even while later ones are.
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    if (res.ok()) EXPECT_EQ(res.value().status, 200);
  });
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The slot is pinned: every further request is shed on the accept
  // thread with 503 + Retry-After, and the client still reads the
  // response (no connection reset).
  for (int i = 0; i < 3; ++i) {
    const auto shed = HttpFetch(server.port(), "GET", "/healthz");
    ASSERT_TRUE(shed.ok()) << shed.status().ToString();
    EXPECT_EQ(shed.value().status, 503);
    bool retry_after = false;
    for (const auto& [name, value] : shed.value().extra_headers) {
      if (name == "retry-after") retry_after = !value.empty();
    }
    EXPECT_TRUE(retry_after);
  }
  EXPECT_GE(server.shed_requests(), 3);
  EXPECT_EQ(server.accepted_requests(), 1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  slow.join();
  server.Stop();
}

// ---- Graceful shutdown of the real daemon ----------------------------------

/// mkdtemp-backed scratch dir for the daemon's --data-dir.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/recon-smoke-XXXXXX";
    char* made = ::mkdtemp(tmpl);
    RECON_CHECK(made != nullptr);
    path_ = made;
  }
  ~TempDir() {
    StatusOr<DataDirState> state = ScanDataDir(path_);
    if (state.ok()) {
      for (const auto& p : state.value().checkpoint_paths) ::remove(p.c_str());
      for (const auto& p : state.value().wal_paths) ::remove(p.c_str());
      for (const auto& p : state.value().tmp_paths) ::remove(p.c_str());
    }
    ::rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(ReconcileServeTest, SigtermDrainsInFlightSealsWalAndExitsZero) {
  TempDir dir;
  int out_pipe[2];
  ASSERT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(RECON_SERVE_BINARY, RECON_SERVE_BINARY, "--demo", "--port", "0",
            "--threads", "2", "--data-dir", dir.path().c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(out_pipe[1]);
  FILE* out = ::fdopen(out_pipe[0], "r");
  ASSERT_NE(out, nullptr);
  int port = 0;
  char line[512];
  while (::fgets(line, sizeof(line), out) != nullptr) {
    if (std::sscanf(line, "listening on port %d", &port) == 1) break;
  }
  ASSERT_GT(port, 0) << "daemon never reported its port";

  // An ingest is in flight when the signal lands; the drain must let it
  // finish (200), not cut the connection.
  std::thread inflight([port] {
    const auto res = HttpFetch(
        port, "POST", "/ingest",
        R"({"references": [{"class": "Person",
                            "values": {"name": ["Leslie Lamport"],
                                       "email": ["lamport@msr.com"]}}],
            "flush": true})");
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    if (res.ok()) EXPECT_EQ(res.value().status, 200) << res.value().body;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  inflight.join();

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::fclose(out);

  // The drain sealed the WAL: the next start sees a clean shutdown.
  StatusOr<DataDirState> state = ScanDataDir(dir.path());
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state.value().wal_paths.size(), 1u);
  StatusOr<WalContents> wal = ReadWalFile(state.value().wal_paths[0]);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(wal.value().sealed);
  EXPECT_EQ(wal.value().truncated_bytes, 0u);
}

}  // namespace
}  // namespace recon::service
