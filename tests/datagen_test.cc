#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datagen/cora_generator.h"
#include "datagen/entities.h"
#include "datagen/pim_generator.h"
#include "datagen/variants.h"
#include "strsim/person_name.h"

namespace recon::datagen {
namespace {

PimConfig SmallPim() {
  PimConfig config = PimConfigA();
  return ScaleConfig(config, 0.04);
}

TEST(UniverseTest, BuildsRequestedShape) {
  UniverseConfig config;
  config.num_persons = 50;
  config.num_mailing_lists = 2;
  config.num_articles = 20;
  config.num_venue_series = 4;
  config.years_per_series = 2;
  Random rng(5);
  const Universe universe = BuildUniverse(config, rng);
  EXPECT_EQ(universe.persons.size(), 52u);
  EXPECT_EQ(universe.articles.size(), 20u);
  EXPECT_EQ(universe.venues.size(), 8u);
  for (const auto& article : universe.articles) {
    EXPECT_GE(article.author_ids.size(), 1u);
    EXPECT_LE(article.author_ids.size(), 4u);
    EXPECT_GE(article.venue_id, 0);
    EXPECT_LT(article.venue_id, 8);
    EXPECT_FALSE(article.title.empty());
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(universe.persons[i].emails.empty());
  }
  EXPECT_TRUE(universe.persons[50].is_mailing_list);
}

TEST(UniverseTest, GoldIdsAreDisjoint) {
  UniverseConfig config;
  config.num_persons = 10;
  config.num_articles = 5;
  Random rng(6);
  const Universe universe = BuildUniverse(config, rng);
  std::set<int> ids;
  for (size_t i = 0; i < universe.persons.size(); ++i) {
    ids.insert(universe.PersonGold(static_cast<int>(i)));
  }
  for (size_t i = 0; i < universe.venues.size(); ++i) {
    ids.insert(universe.VenueGold(static_cast<int>(i)));
  }
  for (size_t i = 0; i < universe.articles.size(); ++i) {
    ids.insert(universe.ArticleGold(static_cast<int>(i)));
  }
  EXPECT_EQ(ids.size(), universe.persons.size() + universe.venues.size() +
                            universe.articles.size());
}

TEST(UniverseTest, OwnerEraSplitChangesAccountOnSameServer) {
  UniverseConfig config;
  config.num_persons = 5;
  config.owner_changes_name_and_account = true;
  Random rng(7);
  const Universe universe = BuildUniverse(config, rng);
  const PersonSpec& owner = universe.persons[0];
  ASSERT_TRUE(owner.has_second_era);
  EXPECT_NE(owner.last, owner.second_last);
  ASSERT_FALSE(owner.second_emails.empty());
  const auto server = [](const std::string& email) {
    return email.substr(email.find('@') + 1);
  };
  EXPECT_EQ(server(owner.emails[0]), server(owner.second_emails[0]));
  EXPECT_NE(owner.emails[0], owner.second_emails[0]);
}

TEST(VariantsTest, NameStylesRender) {
  PersonSpec person;
  person.first = "Robert";
  person.middle_initial = "S";
  person.last = "Epstein";
  person.nickname = "Bob";
  Random rng(8);
  EXPECT_EQ(RenderName(person, 0, NameStyle::kFirstLast, 0, rng),
            "Robert Epstein");
  EXPECT_EQ(RenderName(person, 0, NameStyle::kFirstMiddleLast, 0, rng),
            "Robert S. Epstein");
  EXPECT_EQ(RenderName(person, 0, NameStyle::kLastCommaInitials, 0, rng),
            "Epstein, R.S.");
  EXPECT_EQ(RenderName(person, 0, NameStyle::kLastCommaFirst, 0, rng),
            "Epstein, Robert");
  EXPECT_EQ(RenderName(person, 0, NameStyle::kInitialLast, 0, rng),
            "R. Epstein");
  EXPECT_EQ(RenderName(person, 0, NameStyle::kNickname, 0, rng), "bob");
}

TEST(VariantsTest, RenderedVariantsParseBackConsistently) {
  // Property: every style of the same person parses to a compatible name.
  PersonSpec person;
  person.first = "Katherine";
  person.middle_initial = "J";
  person.last = "Anderson";
  person.nickname = "Kate";
  Random rng(9);
  const strsim::PersonName full = strsim::ParsePersonName(
      RenderName(person, 0, NameStyle::kFirstMiddleLast, 0, rng));
  for (const NameStyle style :
       {NameStyle::kFirstLast, NameStyle::kLastCommaFirst,
        NameStyle::kLastCommaInitials, NameStyle::kInitialLast,
        NameStyle::kInitialsLast}) {
    const std::string rendered = RenderName(person, 0, style, 0, rng);
    const strsim::PersonName parsed = strsim::ParsePersonName(rendered);
    EXPECT_TRUE(strsim::NamesCompatible(full, parsed)) << rendered;
  }
}

TEST(VariantsTest, TypoInjectionChangesString) {
  Random rng(10);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (InjectTypo("stonebraker", rng) != "stonebraker") ++changed;
  }
  EXPECT_GT(changed, 40);
}

TEST(VariantsTest, VenueStylesRender) {
  VenueSpec venue{"International Conference on Very Large Data Bases",
                  "VLDB", "1999", "Edinburgh, Scotland"};
  Random rng(11);
  EXPECT_EQ(RenderVenue(venue, VenueStyle::kAcronym, 0, rng), "VLDB");
  EXPECT_EQ(RenderVenue(venue, VenueStyle::kAcronymYear, 0, rng), "VLDB '99");
  EXPECT_EQ(RenderVenue(venue, VenueStyle::kProceedingsFull, 0, rng),
            "Proceedings of the International Conference on Very Large Data "
            "Bases");
}

TEST(PimGeneratorTest, DeterministicForSeed) {
  const Dataset d1 = GeneratePim(SmallPim());
  const Dataset d2 = GeneratePim(SmallPim());
  ASSERT_EQ(d1.num_references(), d2.num_references());
  for (RefId id = 0; id < d1.num_references(); ++id) {
    EXPECT_EQ(d1.gold_entity(id), d2.gold_entity(id));
    const Reference& r1 = d1.reference(id);
    const Reference& r2 = d2.reference(id);
    ASSERT_EQ(r1.class_id(), r2.class_id());
    for (int attr = 0; attr < r1.num_attributes(); ++attr) {
      EXPECT_EQ(r1.atomic_values(attr), r2.atomic_values(attr));
      EXPECT_EQ(r1.associations(attr), r2.associations(attr));
    }
  }
}

TEST(PimGeneratorTest, DifferentSeedsDiffer) {
  PimConfig config = SmallPim();
  const Dataset d1 = GeneratePim(config);
  config.seed += 1;
  const Dataset d2 = GeneratePim(config);
  bool different = d1.num_references() != d2.num_references();
  if (!different) {
    for (RefId id = 0; id < d1.num_references() && !different; ++id) {
      const int attr = 0;
      different = d1.reference(id).atomic_values(attr) !=
                  d2.reference(id).atomic_values(attr);
    }
  }
  EXPECT_TRUE(different);
}

TEST(PimGeneratorTest, ReferencesAreWellFormed) {
  const Dataset data = GeneratePim(SmallPim());
  const Schema& schema = data.schema();
  const int person = schema.RequireClass("Person");
  const int article = schema.RequireClass("Article");
  const int authors = schema.RequireAttribute(article, "authoredBy");
  const int venue_attr = schema.RequireAttribute(article, "publishedIn");
  const int venue = schema.RequireClass("Venue");

  EXPECT_GT(data.num_references(), 100);
  for (RefId id = 0; id < data.num_references(); ++id) {
    const Reference& ref = data.reference(id);
    EXPECT_FALSE(ref.IsEmpty()) << "reference " << id;
    EXPECT_GE(data.gold_entity(id), 0);
    if (ref.class_id() == article) {
      EXPECT_GE(ref.associations(authors).size(), 1u);
      ASSERT_EQ(ref.associations(venue_attr).size(), 1u);
      // Associations point at the right classes.
      for (const RefId author : ref.associations(authors)) {
        EXPECT_EQ(data.reference(author).class_id(), person);
      }
      EXPECT_EQ(data.reference(ref.associations(venue_attr)[0]).class_id(),
                venue);
    }
  }
}

TEST(PimGeneratorTest, EmailRefsHaveEmailProvenance) {
  const Dataset data = GeneratePim(SmallPim());
  const int person = data.schema().RequireClass("Person");
  int email_refs = 0;
  int bibtex_refs = 0;
  for (RefId id = 0; id < data.num_references(); ++id) {
    if (data.reference(id).class_id() != person) continue;
    if (data.provenance(id) == Provenance::kEmail) ++email_refs;
    if (data.provenance(id) == Provenance::kBibtex) ++bibtex_refs;
  }
  EXPECT_GT(email_refs, 0);
  EXPECT_GT(bibtex_refs, 0);
}

TEST(PimGeneratorTest, PersonRefsDominate) {
  const Dataset data = GeneratePim(SmallPim());
  const int person = data.schema().RequireClass("Person");
  const int person_refs =
      static_cast<int>(data.ReferencesOfClass(person).size());
  EXPECT_GT(person_refs, data.num_references() / 2);
}

TEST(PimGeneratorTest, ScaleConfigShrinks) {
  const PimConfig full = PimConfigA();
  const PimConfig small = ScaleConfig(full, 0.1);
  EXPECT_LT(small.num_messages, full.num_messages);
  EXPECT_LT(small.universe.num_persons, full.universe.num_persons);
  EXPECT_GE(small.num_messages, 1);
}

TEST(CoraGeneratorTest, ShapeMatchesConfig) {
  CoraConfig config;
  config.num_papers = 30;
  config.num_citations = 200;
  const Dataset data = GenerateCora(config);
  const int article = data.schema().RequireClass("Article");
  const int venue = data.schema().RequireClass("Venue");
  EXPECT_EQ(data.ReferencesOfClass(article).size(), 200u);
  EXPECT_EQ(data.ReferencesOfClass(venue).size(), 200u);
  EXPECT_LE(data.NumEntitiesOfClass(article), 30);
  EXPECT_GT(data.NumEntitiesOfClass(article), 10);
}

TEST(CoraGeneratorTest, Deterministic) {
  CoraConfig config;
  config.num_papers = 20;
  config.num_citations = 80;
  const Dataset d1 = GenerateCora(config);
  const Dataset d2 = GenerateCora(config);
  ASSERT_EQ(d1.num_references(), d2.num_references());
  for (RefId id = 0; id < d1.num_references(); ++id) {
    EXPECT_EQ(d1.gold_entity(id), d2.gold_entity(id));
  }
}

TEST(CoraGeneratorTest, SomeVenueMentionsAreWrong) {
  CoraConfig config;
  config.num_papers = 30;
  config.num_citations = 300;
  config.p_wrong_venue = 0.2;
  Universe universe;
  const Dataset data = GenerateCora(config, &universe);
  const int article = data.schema().RequireClass("Article");
  const int pub = data.schema().RequireAttribute(article, "publishedIn");

  // For at least one paper, two citations must carry venues with different
  // gold entities (the Cora noise the paper highlights).
  std::map<int, std::set<int>> venues_per_paper;
  for (const RefId id : data.ReferencesOfClass(article)) {
    const Reference& ref = data.reference(id);
    const RefId venue_ref = ref.associations(pub)[0];
    venues_per_paper[data.gold_entity(id)].insert(
        data.gold_entity(venue_ref));
  }
  bool any_conflict = false;
  for (const auto& [paper, venues] : venues_per_paper) {
    if (venues.size() > 1) any_conflict = true;
  }
  EXPECT_TRUE(any_conflict);
}

}  // namespace
}  // namespace recon::datagen
