// Bit-parallel similarity kernels and the signature prefilter (DESIGN.md
// §16) must be invisible in every output:
//   - the Myers Levenshtein kernels agree with the scalar row-DP reference
//     bit-for-bit over randomized ASCII / UTF-8 / empty / long /
//     near-bound inputs, at every dispatch level the CPU supports;
//   - the signature bounds are provably conservative (Jaccard upper bound
//     >= exact Jaccard, edit lower bound <= exact distance), asserted
//     directly and through a ~10^6-pair title-prefilter sweep with zero
//     divergence;
//   - full reconciliation output is byte-identical with kernels on vs
//     forced to the scalar reference, across threads and shards, on PIM
//     and Cora shapes;
//   - the widened SimMemo key keeps triples distinct that the old packed
//     key collided (ValueId >= 2^26 bleeding into the evidence bits).
// Runs under AddressSanitizer and ThreadSanitizer via the ctest `asan` /
// `tsan` labels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "datagen/pim_generator.h"
#include "model/dataset.h"
#include "shard/sharded_reconciler.h"
#include "sim/comparators.h"
#include "sim/evidence.h"
#include "sim/value_store.h"
#include "strsim/bitparallel.h"
#include "strsim/edit_distance.h"
#include "strsim/signature.h"
#include "strsim/simd_dispatch.h"
#include "strsim/tokens.h"

namespace recon {
namespace {

namespace strsim = recon::strsim;

/// Restores the active dispatch level (and RECON_SIMD handling) on scope
/// exit so a failing test cannot leak a forced level into later tests.
class ScopedSimdLevel {
 public:
  ScopedSimdLevel() : saved_(strsim::ActiveSimdLevel()) {}
  ~ScopedSimdLevel() { strsim::SetSimdLevel(saved_); }

 private:
  strsim::SimdLevel saved_;
};

std::string RandomString(std::mt19937& rng, int max_len,
                         std::string_view alphabet) {
  std::uniform_int_distribution<int> len_dist(0, max_len);
  std::uniform_int_distribution<size_t> ch_dist(0, alphabet.size() - 1);
  std::string s;
  const int len = len_dist(rng);
  s.reserve(len);
  for (int i = 0; i < len; ++i) s.push_back(alphabet[ch_dist(rng)]);
  return s;
}

/// Random UTF-8: mixes 1-, 2-, and 3-byte code points. The kernels operate
/// on bytes, so this mostly stresses high-bit byte values and lengths that
/// land mid-code-point in one string relative to the other.
std::string RandomUtf8(std::mt19937& rng, int max_points) {
  std::uniform_int_distribution<int> n_dist(0, max_points);
  std::uniform_int_distribution<int> kind_dist(0, 2);
  std::string s;
  const int n = n_dist(rng);
  for (int i = 0; i < n; ++i) {
    switch (kind_dist(rng)) {
      case 0:
        s.push_back(static_cast<char>('a' + (rng() % 26)));
        break;
      case 1: {  // U+00A0..U+02FF.
        const int cp = 0xA0 + static_cast<int>(rng() % 0x260);
        s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        break;
      }
      default: {  // U+4E00.. (CJK block).
        const int cp = 0x4E00 + static_cast<int>(rng() % 0x1000);
        s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        break;
      }
    }
  }
  return s;
}

TEST(BitParallelLevenshteinTest, MatchesScalarOnRandomAscii) {
  std::mt19937 rng(20260809);
  // Small alphabet forces plenty of matches; 180 bytes crosses the
  // one-word / multi-word kernel boundary at 64 both ways.
  for (int trial = 0; trial < 4000; ++trial) {
    const std::string a = RandomString(rng, 180, "abcde ");
    const std::string b = RandomString(rng, 180, "abcde ");
    ASSERT_EQ(strsim::ScalarLevenshteinDistance(a, b),
              strsim::MyersLevenshteinDistance(a, b))
        << "a=\"" << a << "\" b=\"" << b << "\"";
  }
}

TEST(BitParallelLevenshteinTest, MatchesScalarOnRandomUtf8) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string a = RandomUtf8(rng, 60);
    const std::string b = RandomUtf8(rng, 60);
    ASSERT_EQ(strsim::ScalarLevenshteinDistance(a, b),
              strsim::MyersLevenshteinDistance(a, b));
  }
}

TEST(BitParallelLevenshteinTest, EmptyAndLongInputs) {
  EXPECT_EQ(0, strsim::MyersLevenshteinDistance("", ""));
  EXPECT_EQ(3, strsim::MyersLevenshteinDistance("", "abc"));
  EXPECT_EQ(3, strsim::MyersLevenshteinDistance("abc", ""));
  std::mt19937 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    // Way past the one-word kernel: several 64-byte blocks per column.
    const std::string a = RandomString(rng, 1200, "abcdefgh");
    const std::string b = RandomString(rng, 1200, "abcdefgh");
    ASSERT_EQ(strsim::ScalarLevenshteinDistance(a, b),
              strsim::MyersLevenshteinDistance(a, b));
  }
}

TEST(BitParallelLevenshteinTest, BoundedMatchesScalarOnRandomBounds) {
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 4000; ++trial) {
    const std::string a = RandomString(rng, 150, "abcd ");
    const std::string b = RandomString(rng, 150, "abcd ");
    const int exact = strsim::ScalarLevenshteinDistance(a, b);
    std::uniform_int_distribution<int> bound_dist(
        0, static_cast<int>(std::max(a.size(), b.size())) + 2);
    const int bound = bound_dist(rng);
    // Both bounded variants contract to min(exact, bound + 1).
    const int want = std::min(exact, bound + 1);
    ASSERT_EQ(want, strsim::ScalarBoundedLevenshteinDistance(a, b, bound));
    ASSERT_EQ(want, strsim::MyersBoundedLevenshteinDistance(a, b, bound))
        << "a=\"" << a << "\" b=\"" << b << "\" bound=" << bound;
  }
}

TEST(BitParallelLevenshteinTest, BoundedNearBoundEdges) {
  // Distances that land exactly on, one under, and one over the bound —
  // the early-exit must never fire a column too soon.
  const std::string base(100, 'x');
  for (int dist = 0; dist <= 6; ++dist) {
    std::string mutated = base;
    for (int i = 0; i < dist; ++i) mutated[i * 7] = 'y';
    for (int bound = std::max(0, dist - 1); bound <= dist + 1; ++bound) {
      const int want = std::min(dist, bound + 1);
      EXPECT_EQ(want,
                strsim::MyersBoundedLevenshteinDistance(base, mutated, bound))
          << "dist=" << dist << " bound=" << bound;
      EXPECT_EQ(want, strsim::ScalarBoundedLevenshteinDistance(base, mutated,
                                                               bound));
    }
  }
  // Negative bound degrades to the equal / not-equal test on both paths.
  EXPECT_EQ(strsim::ScalarBoundedLevenshteinDistance("abc", "abc", -1),
            strsim::MyersBoundedLevenshteinDistance("abc", "abc", -1));
  EXPECT_EQ(strsim::ScalarBoundedLevenshteinDistance("abc", "abd", -1),
            strsim::MyersBoundedLevenshteinDistance("abc", "abd", -1));
}

TEST(SimdDispatchTest, EveryLevelForcedAgreesWithScalar) {
  ScopedSimdLevel restore;
  std::mt19937 rng(4242);
  std::vector<std::pair<std::string, std::string>> cases;
  for (int i = 0; i < 200; ++i) {
    cases.emplace_back(RandomString(rng, 120, "abcdef "),
                       RandomString(rng, 120, "abcdef "));
  }
  const int detected = static_cast<int>(strsim::DetectedSimdLevel());
  for (int level = 0; level <= detected; ++level) {
    const strsim::SimdLevel installed =
        strsim::SetSimdLevel(static_cast<strsim::SimdLevel>(level));
    ASSERT_EQ(level, static_cast<int>(installed));
    ASSERT_EQ(installed, strsim::ActiveSimdLevel());
    for (const auto& [a, b] : cases) {
      const int want = strsim::ScalarLevenshteinDistance(a, b);
      ASSERT_EQ(want, strsim::LevenshteinDistance(a, b))
          << "level=" << strsim::SimdLevelName(installed);
      ASSERT_EQ(std::min(want, 5), strsim::BoundedLevenshteinDistance(a, b, 4))
          << "level=" << strsim::SimdLevelName(installed);
    }
  }
}

TEST(SimdDispatchTest, BatchSymDiffMatchesPortableAtEveryLevel) {
  ScopedSimdLevel restore;
  constexpr int kCount = 257;  // Not a multiple of any vector width.
  std::mt19937_64 rng(555);
  std::vector<uint64_t> a(4 * kCount), b(4 * kCount);
  for (auto& w : a) w = rng();
  for (auto& w : b) w = rng();
  std::vector<int32_t> want(kCount);
  for (int i = 0; i < kCount; ++i) {
    int pop = 0;
    for (int w = 0; w < 4; ++w) {
      pop += __builtin_popcountll(a[4 * i + w] ^ b[4 * i + w]);
    }
    want[i] = pop;
  }
  const int detected = static_cast<int>(strsim::DetectedSimdLevel());
  for (int level = 0; level <= detected; ++level) {
    strsim::SetSimdLevel(static_cast<strsim::SimdLevel>(level));
    std::vector<int32_t> got(kCount, -1);
    strsim::BatchSigSymDiff(a.data(), b.data(), kCount, got.data());
    ASSERT_EQ(want, got) << "level=" << level;
  }
}

TEST(SimdDispatchTest, SetLevelClampsToDetected) {
  ScopedSimdLevel restore;
  const strsim::SimdLevel detected = strsim::DetectedSimdLevel();
  // Asking for more than the CPU has installs the detected maximum.
  EXPECT_EQ(detected, strsim::SetSimdLevel(strsim::SimdLevel::kAvx2));
  EXPECT_EQ(detected, strsim::ActiveSimdLevel());
  EXPECT_EQ(strsim::SimdLevel::kScalar,
            strsim::SetSimdLevel(strsim::SimdLevel::kScalar));
}

TEST(SimdDispatchTest, ParseAndEnvReinit) {
  ScopedSimdLevel restore;
  strsim::SimdLevel level;
  ASSERT_TRUE(strsim::ParseSimdLevelName("scalar", &level));
  EXPECT_EQ(strsim::SimdLevel::kScalar, level);
  ASSERT_TRUE(strsim::ParseSimdLevelName("generic", &level));
  EXPECT_EQ(strsim::SimdLevel::kGeneric, level);
  ASSERT_TRUE(strsim::ParseSimdLevelName("sse42", &level));
  EXPECT_EQ(strsim::SimdLevel::kSse42, level);
  ASSERT_TRUE(strsim::ParseSimdLevelName("avx2", &level));
  EXPECT_EQ(strsim::SimdLevel::kAvx2, level);
  ASSERT_TRUE(strsim::ParseSimdLevelName("auto", &level));
  EXPECT_EQ(strsim::DetectedSimdLevel(), level);
  level = strsim::SimdLevel::kSse42;
  EXPECT_FALSE(strsim::ParseSimdLevelName("sse9000", &level));
  EXPECT_EQ(strsim::SimdLevel::kSse42, level);  // Untouched on failure.

  for (const char* name : {"scalar", "generic"}) {
    ::setenv("RECON_SIMD", name, 1);
    strsim::SimdLevel want;
    ASSERT_TRUE(strsim::ParseSimdLevelName(name, &want));
    EXPECT_EQ(std::min(want, strsim::DetectedSimdLevel()),
              strsim::ReinitSimdLevelFromEnv());
  }
  ::unsetenv("RECON_SIMD");
  EXPECT_EQ(strsim::DetectedSimdLevel(), strsim::ReinitSimdLevelFromEnv());
}

// ---- Signature bound properties, asserted directly.

TEST(SignatureBoundTest, JaccardUpperBoundHoldsOnRandomTokenSets) {
  std::mt19937 rng(606);
  const std::vector<std::string> pool = {
      "query", "processing", "database", "distributed", "relational",
      "systems", "optimization", "parallel", "index", "join",
      "approximate", "evaluation", "large", "data", "management"};
  std::uniform_int_distribution<int> n_dist(0, 10);
  std::uniform_int_distribution<size_t> w_dist(0, pool.size() - 1);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::string> a, b;
    for (int i = n_dist(rng); i > 0; --i) a.push_back(pool[w_dist(rng)]);
    for (int i = n_dist(rng); i > 0; --i) b.push_back(pool[w_dist(rng)]);
    const double exact = strsim::JaccardSimilarity(a, b);
    const double bound = strsim::SigJaccardUpperBound(
        strsim::TokenSignature(a), strsim::TokenSignature(b));
    ASSERT_GE(bound + 1e-12, exact);
    ASSERT_LE(bound, 1.0);
    ASSERT_GE(bound, 0.0);
  }
}

TEST(SignatureBoundTest, EditDistanceLowerBoundHoldsOnRandomStrings) {
  std::mt19937 rng(707);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::string a = RandomString(rng, 80, "abcdefg ");
    const std::string b = RandomString(rng, 80, "abcdefg ");
    const strsim::NgramSet ga = strsim::BuildNgramSet(a, 3);
    const strsim::NgramSet gb = strsim::BuildNgramSet(b, 3);
    const int exact = strsim::ScalarLevenshteinDistance(a, b);
    const int lower = strsim::SigEditDistanceLowerBound(
        strsim::GramSignature(ga), strsim::GramSignature(gb),
        static_cast<int>(a.size()), static_cast<int>(b.size()), 3);
    ASSERT_LE(lower, exact) << "a=\"" << a << "\" b=\"" << b << "\"";
    ASSERT_GE(lower, 0);
  }
}

TEST(SignatureBoundTest, SymDiffIsALowerBound) {
  std::mt19937 rng(808);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string a = RandomString(rng, 60, "abc");
    const std::string b = RandomString(rng, 60, "abc");
    const strsim::NgramSet ga = strsim::BuildNgramSet(a, 3);
    const strsim::NgramSet gb = strsim::BuildNgramSet(b, 3);
    // Exact |A Δ B| by merging the sorted distinct-gram hash lists.
    size_t i = 0, j = 0, common = 0;
    while (i < ga.grams.size() && j < gb.grams.size()) {
      if (ga.grams[i].first == gb.grams[j].first &&
          ga.gram(i) == gb.gram(j)) {
        ++common, ++i, ++j;
      } else if (ga.grams[i] < gb.grams[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    const int symdiff = static_cast<int>(ga.grams.size() + gb.grams.size() -
                                         2 * common);
    ASSERT_LE(strsim::SigSymDiffLowerBound(strsim::GramSignature(ga),
                                           strsim::GramSignature(gb)),
              symdiff);
  }
}

// ---- The title prefilter: a randomized ~10^6-pair sweep with zero
// divergence between the signature upper bound and the exact comparator.

std::vector<std::string> SyntheticTitles(int count) {
  const std::vector<std::string> words = {
      "query",    "processing",  "database",  "distributed", "relational",
      "systems",  "optimization", "parallel", "index",       "join",
      "semantic", "integration", "schema",    "matching",    "entity",
      "resolution"};
  std::mt19937 rng(909);
  std::uniform_int_distribution<int> n_words(0, 8);
  std::uniform_int_distribution<size_t> w_dist(0, words.size() - 1);
  std::uniform_int_distribution<int> typo(0, 9);
  std::vector<std::string> titles;
  titles.reserve(count);
  for (int t = 0; t < count; ++t) {
    std::string title;
    for (int i = n_words(rng); i > 0; --i) {
      std::string word = words[w_dist(rng)];
      if (typo(rng) == 0 && word.size() > 2) {
        word.erase(word.begin() + static_cast<int>(rng() % word.size()));
      }
      if (!title.empty()) title.push_back(' ');
      title += word;
    }
    titles.push_back(std::move(title));
  }
  return titles;
}

TEST(TitlePrefilterTest, MillionPairSweepNeverUnderestimates) {
  constexpr int kTitles = 1415;  // 1415 choose 2 pairs, slightly over 10^6.
  const std::vector<std::string> titles = SyntheticTitles(kTitles);
  std::vector<ValueFeatures> features;
  features.reserve(kTitles);
  for (const std::string& raw : titles) {
    features.push_back(AnalyzeValue(raw, FeatureKind::kTitle));
  }
  int64_t pairs = 0;
  int64_t would_skip = 0;
  for (int i = 0; i < kTitles; ++i) {
    for (int j = i + 1; j < kTitles; ++j) {
      const double ub = TitleSimilarityUpperBound(features[i], features[j]);
      const double exact = TitleFieldSimilarity(features[i], features[j]);
      ++pairs;
      if (ub < 0.5) ++would_skip;
      // The one property the prefilter's correctness rests on. Any single
      // violation would make a skip decision diverge from exact scoring.
      ASSERT_GE(ub + 1e-12, exact)
          << "\"" << titles[i] << "\" vs \"" << titles[j] << "\"";
    }
  }
  EXPECT_GE(pairs, 1000000);
  // On dissimilar random titles the bound must actually prune (this is a
  // sanity check of usefulness, not correctness; 0.5 mirrors a typical
  // article_title seed).
  EXPECT_GT(would_skip, pairs / 4);
}

TEST(TitlePrefilterTest, BatchPopsMatchScalarPops) {
  const std::vector<std::string> titles = SyntheticTitles(300);
  std::vector<ValueFeatures> features;
  for (const std::string& raw : titles) {
    features.push_back(AnalyzeValue(raw, FeatureKind::kTitle));
  }
  // Pair i with i+1: the blocked path's flat 4-word gather.
  const int count = static_cast<int>(features.size()) - 1;
  std::vector<uint64_t> ga(4 * count), gb(4 * count);
  for (int i = 0; i < count; ++i) {
    std::copy(features[i].title_gram_sig.w, features[i].title_gram_sig.w + 4,
              &ga[4 * i]);
    std::copy(features[i + 1].title_gram_sig.w,
              features[i + 1].title_gram_sig.w + 4, &gb[4 * i]);
  }
  std::vector<int32_t> pops(count);
  strsim::BatchSigSymDiff(ga.data(), gb.data(), count, pops.data());
  for (int i = 0; i < count; ++i) {
    ASSERT_EQ(strsim::SigSymDiffLowerBound(features[i].title_gram_sig,
                                           features[i + 1].title_gram_sig),
              pops[i]);
    ASSERT_EQ(TitleSimilarityUpperBoundFromPops(
                  pops[i],
                  strsim::SigSymDiffLowerBound(
                      features[i].title_token_sig,
                      features[i + 1].title_token_sig),
                  features[i], features[i + 1]),
              TitleSimilarityUpperBound(features[i], features[i + 1]));
  }
}

// ---- End-to-end byte identity: kernels on vs forced scalar.

Dataset SmallPimB() {
  datagen::PimConfig config = datagen::PimConfigB();
  config = datagen::ScaleConfig(config, 0.12);
  return datagen::GeneratePim(config);
}

Dataset SmallCora() {
  datagen::CoraConfig config;
  config.num_papers = 30;
  config.num_citations = 300;
  config.num_authors = 60;
  config.num_venue_series = 12;
  return datagen::GenerateCora(config);
}

void SweepKernelIdentity(const Dataset& dataset, const std::string& name) {
  ScopedSimdLevel restore;
  const strsim::SimdLevel detected = strsim::DetectedSimdLevel();
  for (const int shards : {1, 4}) {
    for (const int threads : {1, 2, 4, 8}) {
      ReconcilerOptions options;
      options.num_shards = shards;
      options.num_threads = threads;
      strsim::SetSimdLevel(detected);
      const ReconcileResult on = shard::ShardedReconcile(dataset, options);
      strsim::SetSimdLevel(strsim::SimdLevel::kScalar);
      const ReconcileResult off = shard::ShardedReconcile(dataset, options);
      const std::string what = name + " shards=" + std::to_string(shards) +
                               " threads=" + std::to_string(threads);
      EXPECT_EQ(off.cluster, on.cluster) << what;
      EXPECT_EQ(off.merged_pairs, on.merged_pairs) << what;
      EXPECT_EQ(off.stats.num_merges, on.stats.num_merges) << what;
      EXPECT_EQ(off.stats.num_folds, on.stats.num_folds) << what;
    }
  }
}

TEST(KernelIdentityTest, PimBByteIdenticalAcrossThreadsAndShards) {
  SweepKernelIdentity(SmallPimB(), "pim-b");
}

TEST(KernelIdentityTest, CoraByteIdenticalAcrossThreadsAndShards) {
  SweepKernelIdentity(SmallCora(), "cora");
}

TEST(KernelIdentityTest, PrefilterCountersReportedAndGatedOffAtScalar) {
  ScopedSimdLevel restore;
  const Dataset dataset = SmallPimB();
  const ReconcilerOptions options;

  strsim::SetSimdLevel(strsim::SimdLevel::kScalar);
  const ReconcileResult off = Reconciler(options).Run(dataset);
  EXPECT_EQ(0, off.stats.num_prefilter_skips);
  EXPECT_EQ(0, off.stats.num_prefilter_exact);
  EXPECT_STREQ("scalar", off.stats.simd_dispatch);

  const strsim::SimdLevel detected = strsim::DetectedSimdLevel();
  if (detected == strsim::SimdLevel::kScalar) {
    GTEST_SKIP() << "no non-scalar dispatch level on this CPU";
  }
  strsim::SetSimdLevel(detected);
  const ReconcileResult on = Reconciler(options).Run(dataset);
  EXPECT_EQ(off.cluster, on.cluster);
  // PIM B has an article class with title evidence, so the prefilter must
  // have looked at title pairs (skipped + exact covers all of them), and
  // the title signatures must be accounted.
  EXPECT_GT(on.stats.num_prefilter_skips + on.stats.num_prefilter_exact, 0);
  EXPECT_GT(on.stats.signature_bytes, 0);
  EXPECT_STREQ(strsim::SimdLevelName(detected), on.stats.simd_dispatch);
}

// ---- SimMemo key regression: the old single-uint64 packing XORed the
// evidence channel into bits 58+, so a ValueId >= 2^26 (whose bit 26
// lands at bit 58 after the << 32 shift) could collide with a different
// evidence channel's entry. The widened key must keep them distinct.

TEST(SimMemoKeyTest, OldPackingCollisionStaysDistinct) {
  // Under the old packing: key(ev=0, lo=2^26, hi) == key(ev=1, lo=0, hi).
  const ValueId lo_a = ValueId{1} << 26;
  const ValueId lo_b = 0;
  const ValueId hi = ValueId{1} << 27;
  const MemoKey a = SimMemo::MakeKey(/*evidence=*/0, lo_a, hi);
  const MemoKey b = SimMemo::MakeKey(/*evidence=*/1, lo_b, hi);
  EXPECT_FALSE(a == b);

  SimMemo memo;
  memo.set_max_bytes(1 << 20);
  int64_t hits = 0, misses = 0;
  const float first =
      memo.LookupOrCompute(0, lo_a, hi, [] { return 0.25; }, &hits, &misses);
  const float second =
      memo.LookupOrCompute(1, lo_b, hi, [] { return 0.75; }, &hits, &misses);
  EXPECT_FLOAT_EQ(0.25f, first);
  EXPECT_FLOAT_EQ(0.75f, second);  // A collision would have returned 0.25.
  EXPECT_EQ(0, hits);
  EXPECT_EQ(2, misses);
  // Reading both back hits the memo without recompute.
  EXPECT_FLOAT_EQ(
      0.25f, memo.LookupOrCompute(0, lo_a, hi, [] { return -1.0; }, &hits,
                                  &misses));
  EXPECT_FLOAT_EQ(
      0.75f, memo.LookupOrCompute(1, lo_b, hi, [] { return -1.0; }, &hits,
                                  &misses));
  EXPECT_EQ(2, hits);
}

TEST(SimMemoKeyTest, KeyIsOrderNormalized) {
  EXPECT_TRUE(SimMemo::MakeKey(3, 7, 9) == SimMemo::MakeKey(3, 9, 7));
  EXPECT_FALSE(SimMemo::MakeKey(3, 7, 9) == SimMemo::MakeKey(4, 7, 9));
}

}  // namespace
}  // namespace recon
