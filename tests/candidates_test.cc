// Tests for candidate generation (blocking) and the incremental
// CandidateIndex.

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/candidates.h"
#include "datagen/pim_generator.h"
#include "model/dataset.h"

namespace recon {
namespace {

class CandidatesTest : public ::testing::Test {
 protected:
  CandidatesTest() : data_(BuildPimSchema()) {
    binding_ = SchemaBinding::Resolve(data_.schema());
  }

  RefId Person(const std::string& name, const std::string& email = "") {
    const int person = binding_.person;
    const RefId id = data_.NewReference(person, 0);
    if (!name.empty()) {
      data_.mutable_reference(id).AddAtomicValue(binding_.person_name, name);
    }
    if (!email.empty()) {
      data_.mutable_reference(id).AddAtomicValue(binding_.person_email,
                                                 email);
    }
    return id;
  }

  bool ArePaired(RefId a, RefId b, const CandidateList& list) {
    return std::find(list.begin(), list.end(),
                     std::make_pair(std::min(a, b), std::max(a, b))) !=
           list.end();
  }

  Dataset data_;
  SchemaBinding binding_;
  ReconcilerOptions options_;
};

TEST_F(CandidatesTest, LastNamesShareABlock) {
  const RefId a = Person("Robert S. Epstein");
  const RefId b = Person("Epstein, R.S.");
  const auto list = GenerateCandidates(data_, binding_, options_);
  EXPECT_TRUE(ArePaired(a, b, list));
}

TEST_F(CandidatesTest, NameMeetsEmailAccount) {
  const RefId a = Person("Stonebraker, M.");
  const RefId b = Person("", "stonebraker@csail.mit.edu");
  const auto list = GenerateCandidates(data_, binding_, options_);
  EXPECT_TRUE(ArePaired(a, b, list));
}

TEST_F(CandidatesTest, PatternAccountsMeetLastNames) {
  // "repstein" (first-initial + last) and "robert.epstein" must land next
  // to "Epstein".
  const RefId name_only = Person("Epstein, R.S.");
  const RefId flast = Person("", "repstein@cs.wisc.edu");
  const RefId dotted = Person("", "robert.epstein@gmail.com");
  const auto list = GenerateCandidates(data_, binding_, options_);
  EXPECT_TRUE(ArePaired(name_only, flast, list));
  EXPECT_TRUE(ArePaired(name_only, dotted, list));
}

TEST_F(CandidatesTest, NicknameMeetsCanonicalAccount) {
  const RefId nick = Person("mike");
  const RefId account = Person("", "michael@x.edu");
  const auto list = GenerateCandidates(data_, binding_, options_);
  EXPECT_TRUE(ArePaired(nick, account, list));
}

TEST_F(CandidatesTest, TypoedLastNamesShareAPrefixBlock) {
  const RefId clean = Person("Norman Bradford");
  const RefId typoed = Person("Norman Bradfodr");
  const auto list = GenerateCandidates(data_, binding_, options_);
  EXPECT_TRUE(ArePaired(clean, typoed, list));
}

TEST_F(CandidatesTest, UnrelatedNamesDoNotPair) {
  const RefId a = Person("Eugene Wong");
  const RefId b = Person("Robert Epstein");
  const auto list = GenerateCandidates(data_, binding_, options_);
  EXPECT_FALSE(ArePaired(a, b, list));
}

TEST_F(CandidatesTest, OversizedBlocksAreSkipped) {
  options_.max_block_size = 5;
  for (int i = 0; i < 10; ++i) Person("Alice Zimmerman");
  const auto list = GenerateCandidates(data_, binding_, options_);
  EXPECT_TRUE(list.empty());
}

TEST_F(CandidatesTest, PairsAreCanonicalAndUnique) {
  for (int i = 0; i < 8; ++i) Person("Alice Zimmerman", "az@x.edu");
  const auto list = GenerateCandidates(data_, binding_, options_);
  std::set<std::pair<RefId, RefId>> seen;
  for (const auto& [a, b] : list) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(seen.insert({a, b}).second);
  }
  EXPECT_EQ(list.size(), 8u * 7 / 2);
}

TEST_F(CandidatesTest, IndexMatchesBatchGeneration) {
  // Feeding the whole dataset to CandidateIndex in one batch must produce
  // exactly GenerateCandidates' output.
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.02);
  const Dataset data = datagen::GeneratePim(config);
  const SchemaBinding binding = SchemaBinding::Resolve(data.schema());
  const ReconcilerOptions options;

  const CandidateList batch = GenerateCandidates(data, binding, options);
  CandidateIndex index(binding, options);
  const CandidateList incremental = index.AddReferences(data, 0);
  EXPECT_EQ(batch, incremental);
}

TEST_F(CandidatesTest, IndexBatchesCoverBatchGeneration) {
  // Two-batch insertion yields the same pair set (oversized-block skips
  // can differ at the margin; this dataset stays under the cap).
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.015);
  const Dataset data = datagen::GeneratePim(config);
  const SchemaBinding binding = SchemaBinding::Resolve(data.schema());
  const ReconcilerOptions options;

  const CandidateList batch = GenerateCandidates(data, binding, options);

  // Replay: a dataset prefix, then the rest.
  CandidateIndex index(binding, options);
  Dataset replay(data.schema());
  const RefId cut = data.num_references() / 2;
  for (RefId id = 0; id < cut; ++id) {
    Reference copy(data.reference(id).class_id(),
                   data.reference(id).num_attributes());
    for (int attr = 0; attr < copy.num_attributes(); ++attr) {
      for (const auto& v : data.reference(id).atomic_values(attr)) {
        copy.AddAtomicValue(attr, v);
      }
    }
    replay.AddReference(std::move(copy), data.gold_entity(id));
  }
  CandidateList merged = index.AddReferences(replay, 0);
  for (RefId id = cut; id < data.num_references(); ++id) {
    Reference copy(data.reference(id).class_id(),
                   data.reference(id).num_attributes());
    for (int attr = 0; attr < copy.num_attributes(); ++attr) {
      for (const auto& v : data.reference(id).atomic_values(attr)) {
        copy.AddAtomicValue(attr, v);
      }
    }
    replay.AddReference(std::move(copy), data.gold_entity(id));
  }
  const CandidateList second = index.AddReferences(replay, cut);
  merged.insert(merged.end(), second.begin(), second.end());
  std::sort(merged.begin(), merged.end());

  EXPECT_EQ(merged, batch);
}

TEST_F(CandidatesTest, BlockingKeysAreClassAppropriate) {
  const Dataset data = datagen::GeneratePim(
      datagen::ScaleConfig(datagen::PimConfigA(), 0.01));
  const SchemaBinding binding = SchemaBinding::Resolve(data.schema());
  for (RefId id = 0; id < data.num_references(); ++id) {
    const auto keys = BlockingKeys(data, id, binding);
    const int class_id = data.reference(id).class_id();
    for (const std::string& key : keys) {
      if (class_id == binding.article) {
        EXPECT_EQ(key.substr(0, 2), "t:");
      } else if (class_id == binding.venue) {
        EXPECT_EQ(key.substr(0, 2), "v:");
      } else {
        EXPECT_TRUE(key.substr(0, 2) == "n:" || key.substr(0, 2) == "e:" ||
                    key.substr(0, 3) == "p4:")
            << key;
      }
    }
  }
}

}  // namespace
}  // namespace recon
