// Cross-module integration tests: full reconciliation runs over generated
// datasets, checking the paper's qualitative claims at small scale, plus a
// differential test between the standalone IndepDec baseline and the
// Reconciler configured as IndepDec.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"

namespace recon {
namespace {

datagen::PimConfig SmallPim(uint64_t seed) {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.04);
  config.seed = seed;
  return config;
}

TEST(IntegrationTest, DepGraphBeatsIndepDecOnPersons) {
  const Dataset data = datagen::GeneratePim(SmallPim(42));
  const int person = data.schema().RequireClass("Person");

  const IndepDec baseline;
  const PairMetrics indep =
      EvaluateClass(data, baseline.Run(data).cluster, person);
  const Reconciler depgraph(ReconcilerOptions::DepGraph());
  const PairMetrics dep =
      EvaluateClass(data, depgraph.Run(data).cluster, person);

  EXPECT_GT(dep.recall, indep.recall);
  EXPECT_GE(dep.f1, indep.f1);
  EXPECT_GT(dep.precision, 0.9);
}

TEST(IntegrationTest, DepGraphBeatsIndepDecOnVenues) {
  const Dataset data = datagen::GeneratePim(SmallPim(43));
  const int venue = data.schema().RequireClass("Venue");
  const IndepDec baseline;
  const PairMetrics indep =
      EvaluateClass(data, baseline.Run(data).cluster, venue);
  const Reconciler depgraph(ReconcilerOptions::DepGraph());
  const PairMetrics dep =
      EvaluateClass(data, depgraph.Run(data).cluster, venue);
  EXPECT_GT(dep.recall, indep.recall);
}

TEST(IntegrationTest, ReconcilerIndepDecMatchesStandaloneBaseline) {
  // The standalone baseline is an independent implementation of the same
  // specification; both must produce the same partition.
  for (const uint64_t seed : {7u, 8u, 9u}) {
    const Dataset data = datagen::GeneratePim(SmallPim(seed));
    const IndepDec standalone;
    const Reconciler configured(ReconcilerOptions::IndepDec());
    const auto a = standalone.Run(data).cluster;
    const auto b = configured.Run(data).cluster;
    ASSERT_EQ(a.size(), b.size());
    // Compare as partitions (cluster representatives may differ).
    std::map<int, int> mapping;
    for (size_t i = 0; i < a.size(); ++i) {
      auto [it, inserted] = mapping.try_emplace(a[i], b[i]);
      EXPECT_EQ(it->second, b[i]) << "partition mismatch at ref " << i
                                  << " (seed " << seed << ")";
    }
  }
}

TEST(IntegrationTest, ModesOrderOnPartitionCounts) {
  // Table 5's ordering at small scale: more machinery, fewer partitions
  // (allowing ties).
  const Dataset data = datagen::GeneratePim(SmallPim(44));
  const int person = data.schema().RequireClass("Person");

  auto partitions = [&](bool propagation, bool enrichment) {
    ReconcilerOptions options;
    options.propagation = propagation;
    options.enrichment = enrichment;
    const Reconciler reconciler(options);
    return reconciler.Run(data).NumPartitionsOfClass(data, person);
  };
  const int traditional = partitions(false, false);
  const int propagation = partitions(true, false);
  const int merge = partitions(false, true);
  const int full = partitions(true, true);

  // More machinery never produces more partitions than Traditional, and
  // Full refines Merge. (Full vs Propagation is not ordered in general:
  // enrichment folds non-merge constraints onto whole clusters, which can
  // correctly block merges Propagation would have made.)
  EXPECT_LE(propagation, traditional);
  EXPECT_LE(merge, traditional);
  EXPECT_LE(full, merge);
}

TEST(IntegrationTest, EvidenceLevelsOrderOnPartitionCounts) {
  const Dataset data = datagen::GeneratePim(SmallPim(45));
  const int person = data.schema().RequireClass("Person");
  int previous = 1 << 30;
  for (const EvidenceLevel level :
       {EvidenceLevel::kAttrWise, EvidenceLevel::kNameEmail,
        EvidenceLevel::kArticle, EvidenceLevel::kContact}) {
    ReconcilerOptions options;
    options.evidence_level = level;
    const Reconciler reconciler(options);
    const int parts = reconciler.Run(data).NumPartitionsOfClass(data, person);
    EXPECT_LE(parts, previous);
    previous = parts;
  }
}

TEST(IntegrationTest, ConstraintsImprovePrecision) {
  const Dataset data = datagen::GeneratePim(SmallPim(46));
  const int person = data.schema().RequireClass("Person");

  ReconcilerOptions with = ReconcilerOptions::DepGraph();
  ReconcilerOptions without = ReconcilerOptions::DepGraph();
  without.constraints = false;
  const PairMetrics m_with =
      EvaluateClass(data, Reconciler(with).Run(data).cluster, person);
  const PairMetrics m_without =
      EvaluateClass(data, Reconciler(without).Run(data).cluster, person);
  EXPECT_GE(m_with.precision, m_without.precision);
}

TEST(IntegrationTest, ClustersNeverMixClasses) {
  const Dataset data = datagen::GeneratePim(SmallPim(47));
  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult result = reconciler.Run(data);
  std::map<int, int> class_of_cluster;
  for (RefId id = 0; id < data.num_references(); ++id) {
    const int class_id = data.reference(id).class_id();
    auto [it, inserted] =
        class_of_cluster.try_emplace(result.cluster[id], class_id);
    EXPECT_EQ(it->second, class_id);
  }
}

TEST(IntegrationTest, ClusterVectorIsCanonical) {
  const Dataset data = datagen::GeneratePim(SmallPim(48));
  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult result = reconciler.Run(data);
  ASSERT_EQ(static_cast<int>(result.cluster.size()), data.num_references());
  for (RefId id = 0; id < data.num_references(); ++id) {
    const int rep = result.cluster[id];
    ASSERT_GE(rep, 0);
    ASSERT_LT(rep, data.num_references());
    EXPECT_EQ(result.cluster[rep], rep);  // Representative is fixed point.
  }
}

TEST(IntegrationTest, CoraDepGraphImprovesVenueRecall) {
  datagen::CoraConfig config;
  config.num_papers = 40;
  config.num_citations = 300;
  const Dataset data = datagen::GenerateCora(config);
  const int venue = data.schema().RequireClass("Venue");

  const IndepDec baseline;
  const PairMetrics indep =
      EvaluateClass(data, baseline.Run(data).cluster, venue);
  const Reconciler depgraph(ReconcilerOptions::DepGraph());
  const PairMetrics dep =
      EvaluateClass(data, depgraph.Run(data).cluster, venue);
  EXPECT_GT(dep.recall, indep.recall);
  EXPECT_GT(dep.f1, indep.f1);
}

TEST(IntegrationTest, OwnerSplitByAccountConstraint) {
  // Dataset D's phenomenon: the owner's two eras (new last name, new
  // account on the same server) must NOT be merged when constraints are
  // on.
  datagen::PimConfig config = datagen::PimConfigD();
  config = datagen::ScaleConfig(config, 0.05);
  const Dataset data = datagen::GeneratePim(config);
  const int person = data.schema().RequireClass("Person");

  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult result = reconciler.Run(data);

  // Gold entity 0 is the owner. Collect the clusters of her references.
  std::set<int> owner_clusters;
  for (RefId id = 0; id < data.num_references(); ++id) {
    if (data.reference(id).class_id() == person &&
        data.gold_entity(id) == 0) {
      owner_clusters.insert(result.cluster[id]);
    }
  }
  EXPECT_GE(owner_clusters.size(), 2u)
      << "owner eras should be split by the unique-account constraint";
}

}  // namespace
}  // namespace recon
