// Tests for user-feedback support (paper §7): confirmed matches force
// merges (and propagate through the graph like any other merge), confirmed
// non-matches become constraints with full negative propagation.

#include <gtest/gtest.h>

#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "model/dataset.h"

namespace recon {
namespace {

class FeedbackTest : public ::testing::Test {
 protected:
  FeedbackTest() : data_(BuildPimSchema()) {
    const Schema& s = data_.schema();
    person_ = s.RequireClass("Person");
    name_ = s.RequireAttribute(person_, "name");
    email_ = s.RequireAttribute(person_, "email");
    contact_ = s.RequireAttribute(person_, "emailContact");
  }

  RefId Person(const std::string& name, const std::string& email = "") {
    const RefId id = data_.NewReference(person_, -1);
    if (!name.empty()) data_.mutable_reference(id).AddAtomicValue(name_, name);
    if (!email.empty()) {
      data_.mutable_reference(id).AddAtomicValue(email_, email);
    }
    return id;
  }

  Dataset data_;
  int person_, name_, email_, contact_;
};

TEST_F(FeedbackTest, ConfirmedMatchForcesMerge) {
  // Nothing connects these two references; the user says they match.
  const RefId a = Person("J. S.", "jsmith1@x.edu");
  const RefId b = Person("Johannes Schmidt-Meyer", "jsm@y.de");
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  EXPECT_NE(Reconciler(options).Run(data_).cluster[a],
            Reconciler(options).Run(data_).cluster[b]);
  options.feedback.same.emplace_back(a, b);
  const ReconcileResult result = Reconciler(options).Run(data_);
  EXPECT_EQ(result.cluster[a], result.cluster[b]);
}

TEST_F(FeedbackTest, ConfirmedMatchPropagatesLikeAnyMerge) {
  // Forcing a merge pools the references; a third reference then matches
  // the enriched cluster through the pooled email.
  const RefId a = Person("Eugene Wong");
  const RefId b = Person("", "ew@berkeley.edu");
  const RefId c = Person("", "ew@berkeley.edu");
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;  // Exercise the graph path.
  options.feedback.same.emplace_back(a, b);
  const ReconcileResult result = Reconciler(options).Run(data_);
  EXPECT_EQ(result.cluster[a], result.cluster[b]);
  EXPECT_EQ(result.cluster[a], result.cluster[c]);
}

TEST_F(FeedbackTest, ConfirmedNonMatchBlocksMerge) {
  // Identical full names would merge; the user says they are different
  // people.
  const RefId a = Person("Wei Wang");
  const RefId b = Person("Wei Wang");
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  EXPECT_EQ(Reconciler(options).Run(data_).cluster[a],
            Reconciler(options).Run(data_).cluster[b]);
  options.feedback.distinct.emplace_back(a, b);
  const ReconcileResult result = Reconciler(options).Run(data_);
  EXPECT_NE(result.cluster[a], result.cluster[b]);
}

TEST_F(FeedbackTest, NonMatchPropagatesNegativeEvidence) {
  // A third identical-name reference may join one side but not both.
  const RefId a = Person("Wei Wang");
  const RefId b = Person("Wei Wang");
  const RefId c = Person("Wei Wang");
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.feedback.distinct.emplace_back(a, b);
  const ReconcileResult result = Reconciler(options).Run(data_);
  EXPECT_NE(result.cluster[a], result.cluster[b]);
  EXPECT_TRUE(result.cluster[c] != result.cluster[a] ||
              result.cluster[c] != result.cluster[b]);
}

TEST_F(FeedbackTest, FeedbackSurvivesPremerge) {
  // With pre-merging enabled, feedback in original-reference space must
  // be remapped onto the condensed references.
  const RefId a1 = Person("Alpha One", "alpha@x.edu");
  const RefId a2 = Person("", "alpha@x.edu");  // Premerges with a1.
  const RefId b = Person("Beta Two", "beta@y.edu");
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  ASSERT_TRUE(options.premerge_equal_emails);
  options.feedback.same.emplace_back(a2, b);  // Via the premerged member.
  const ReconcileResult result = Reconciler(options).Run(data_);
  EXPECT_EQ(result.cluster[a1], result.cluster[a2]);
  EXPECT_EQ(result.cluster[a2], result.cluster[b]);
}

TEST_F(FeedbackTest, InvalidPairsAreIgnored) {
  const RefId a = Person("Someone Real");
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.feedback.same.emplace_back(a, a);        // Self pair.
  options.feedback.same.emplace_back(a, 999);      // Out of range.
  options.feedback.distinct.emplace_back(-1, a);   // Negative.
  const ReconcileResult result = Reconciler(options).Run(data_);
  EXPECT_EQ(result.cluster[a], a);
}

TEST_F(FeedbackTest, FeedbackOnGeneratedDataImprovesRecall) {
  // Simulate a user confirming a few cross-style pairs the algorithm
  // missed; the confirmations must strictly reduce partition counts.
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.02);
  const Dataset data = datagen::GeneratePim(config);
  const int person = data.schema().RequireClass("Person");

  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  const ReconcileResult before = Reconciler(options).Run(data);

  // Find up to 5 same-entity pairs in different clusters and confirm them.
  std::map<int, RefId> first_cluster_of_entity;
  int confirmed = 0;
  for (RefId id = 0; id < data.num_references() && confirmed < 5; ++id) {
    if (data.reference(id).class_id() != person) continue;
    const int gold = data.gold_entity(id);
    auto [it, inserted] =
        first_cluster_of_entity.try_emplace(gold, id);
    if (!inserted &&
        before.cluster[it->second] != before.cluster[id]) {
      options.feedback.same.emplace_back(it->second, id);
      ++confirmed;
    }
  }
  ASSERT_GT(confirmed, 0);
  const ReconcileResult after = Reconciler(options).Run(data);
  EXPECT_LT(after.NumPartitionsOfClass(data, person),
            before.NumPartitionsOfClass(data, person));
}

}  // namespace
}  // namespace recon
