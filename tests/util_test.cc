#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <deque>

#include "util/atomic_shared_ptr.h"
#include "util/json.h"
#include "util/random.h"
#include "util/ring_buffer.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/union_find.h"

namespace recon {
namespace {

// ---- Status --------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad schema");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad schema");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// ---- String utilities -----------------------------------------------------

TEST(StringUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  const std::vector<std::string> parts = SplitWhitespace("  a \t b\nc ");
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, TokenizeLowercasesAndSplitsOnPunct) {
  EXPECT_EQ(Tokenize("Dong, X.-L. (2005)"),
            (std::vector<std::string>{"dong", "x", "l", "2005"}));
  EXPECT_TRUE(Tokenize("...").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("stonebraker", "stone"));
  EXPECT_FALSE(StartsWith("stone", "stonebraker"));
  EXPECT_TRUE(EndsWith("mit.edu", ".edu"));
  EXPECT_FALSE(EndsWith("edu", "mit.edu"));
}

TEST(StringUtilTest, IsDigits) {
  EXPECT_TRUE(IsDigits("1978"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_FALSE(IsDigits("19a"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a--b--c", "--", "-"), "a-b-c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%.3f/%d", 0.5, 7), "0.500/7");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

// ---- Random ----------------------------------------------------------------

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 5);
}

TEST(RandomTest, BoundedStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RandomTest, NextIntInclusiveRange) {
  Random rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // All values hit with 2000 draws.
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, WeightedRespectsZeroWeights) {
  Random rng(13);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextWeighted({0.0, 1.0, 0.0}), 1);
  }
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(17);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(ZipfSamplerTest, HeadIsMoreLikelyThanTail) {
  Random rng(19);
  ZipfSampler sampler(100, 1.0);
  std::map<int, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(ZipfSamplerTest, CoversSupport) {
  Random rng(23);
  ZipfSampler sampler(5, 0.5);
  std::set<int> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(sampler.Sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

// ---- UnionFind --------------------------------------------------------------

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  EXPECT_EQ(uf.num_sets(), 4);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(1, 2));
  uf.Union(1, 3);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3);
}

TEST(UnionFindTest, UnionReturnsLargerSetsRep) {
  UnionFind uf(10);
  uf.Union(0, 1);
  uf.Union(0, 2);
  // {0,1,2} vs {9}: the large set's representative must win.
  const int rep = uf.Union(9, 0);
  EXPECT_EQ(rep, uf.Find(1));
  EXPECT_EQ(uf.SetSize(9), 4);
}

TEST(UnionFindTest, IdempotentUnion) {
  UnionFind uf(4);
  uf.Union(1, 2);
  const int sets = uf.num_sets();
  uf.Union(2, 1);
  EXPECT_EQ(uf.num_sets(), sets);
}

TEST(UnionFindTest, GroupsAreSortedPartitions) {
  UnionFind uf(7);
  uf.Union(5, 2);
  uf.Union(2, 6);
  uf.Union(0, 3);
  const auto groups = uf.Groups();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 3}));
  EXPECT_EQ(groups[1], (std::vector<int>{1}));
  EXPECT_EQ(groups[2], (std::vector<int>{2, 5, 6}));
  EXPECT_EQ(groups[3], (std::vector<int>{4}));
}

// Property: after any sequence of unions, Find is consistent with
// Connected and group sizes sum to n.
TEST(UnionFindTest, PropertyRandomUnions) {
  Random rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 30;
    UnionFind uf(n);
    for (int i = 0; i < 25; ++i) {
      uf.Union(static_cast<int>(rng.NextBounded(n)),
               static_cast<int>(rng.NextBounded(n)));
    }
    const auto groups = uf.Groups();
    EXPECT_EQ(static_cast<int>(groups.size()), uf.num_sets());
    int total = 0;
    for (const auto& g : groups) {
      total += static_cast<int>(g.size());
      for (int member : g) {
        EXPECT_EQ(uf.Find(member), uf.Find(g.front()));
      }
    }
    EXPECT_EQ(total, n);
  }
}

// ---- RingDeque -----------------------------------------------------------

TEST(RingDequeTest, StartsEmpty) {
  RingDeque<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 0u);
}

TEST(RingDequeTest, FifoOrder) {
  RingDeque<int> q;
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop_front(), i);
  EXPECT_TRUE(q.empty());
}

TEST(RingDequeTest, PushFrontJumpsTheQueue) {
  RingDeque<int> q;
  q.push_back(1);
  q.push_back(2);
  q.push_front(0);
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[1], 1);
  EXPECT_EQ(q[2], 2);
  EXPECT_EQ(q.pop_front(), 0);
  EXPECT_EQ(q.pop_front(), 1);
  EXPECT_EQ(q.pop_front(), 2);
}

TEST(RingDequeTest, IndexingIsFrontRelative) {
  RingDeque<int> q;
  for (int i = 0; i < 8; ++i) q.push_back(i);
  for (int i = 0; i < 5; ++i) q.pop_front();
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q[0], 5);
  EXPECT_EQ(q[2], 7);
}

TEST(RingDequeTest, GrowsAcrossWrapAround) {
  // Force the head to sit mid-buffer before growth so relinearization has
  // to copy a wrapped range.
  RingDeque<int> q(16);
  ASSERT_EQ(q.capacity(), 16u);
  for (int i = 0; i < 12; ++i) q.push_back(i);
  for (int i = 0; i < 12; ++i) q.pop_front();
  for (int i = 0; i < 17; ++i) q.push_back(i);  // Wraps, then doubles.
  EXPECT_EQ(q.capacity(), 32u);
  for (int i = 0; i < 17; ++i) EXPECT_EQ(q.pop_front(), i);
}

TEST(RingDequeTest, InitialCapacityRoundsUpToPowerOfTwo) {
  RingDeque<int> q(100);
  EXPECT_EQ(q.capacity(), 128u);
  RingDeque<int> tiny(3);
  EXPECT_EQ(tiny.capacity(), 16u);  // kMinCapacity floor.
}

TEST(RingDequeTest, ClearKeepsCapacity) {
  RingDeque<int> q;
  for (int i = 0; i < 50; ++i) q.push_back(i);
  const size_t capacity = q.capacity();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), capacity);
  q.push_back(7);
  EXPECT_EQ(q.pop_front(), 7);
}

TEST(RingDequeTest, PropertyMatchesStdDeque) {
  // Random interleaving of operations against the reference container.
  Random rng(20260806);
  RingDeque<int> q;
  std::deque<int> ref;
  for (int step = 0; step < 20000; ++step) {
    const uint64_t op = rng.NextBounded(4);
    if (op == 0 || (op == 1 && ref.size() < 4)) {
      q.push_back(step);
      ref.push_back(step);
    } else if (op == 1) {
      q.push_front(step);
      ref.push_front(step);
    } else if (op == 2 && !ref.empty()) {
      ASSERT_EQ(q.pop_front(), ref.front());
      ref.pop_front();
    } else if (!ref.empty()) {
      const size_t i = static_cast<size_t>(rng.NextBounded(ref.size()));
      ASSERT_EQ(q[i], ref[i]);
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  while (!ref.empty()) {
    ASSERT_EQ(q.pop_front(), ref.front());
    ref.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

// ---- AtomicSharedPtr -----------------------------------------------------

TEST(AtomicSharedPtrTest, LoadPinsWhileStoreReplaces) {
  AtomicSharedPtr<const int> cell(std::make_shared<const int>(0));
  std::atomic<bool> done{false};
  std::atomic<int> regressions{0};
  std::thread reader([&] {
    int last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::shared_ptr<const int> pinned = cell.Load();
      if (*pinned < last) ++regressions;  // Values only move forward.
      last = *pinned;
    }
  });
  for (int i = 1; i <= 1000; ++i) {
    cell.Store(std::make_shared<const int>(i));
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(regressions.load(), 0);
  EXPECT_EQ(*cell.Load(), 1000);
}

// ---- JSON ----------------------------------------------------------------

TEST(JsonTest, WriterEscapesEverythingRfc8259Requires) {
  json::Value doc = json::Value::Object();
  doc.Set("k", std::string("quote\" backslash\\ newline\n tab\t bell\x07"));
  EXPECT_EQ(doc.Dump(),
            "{\"k\":\"quote\\\" backslash\\\\ newline\\n tab\\t "
            "bell\\u0007\"}");
}

TEST(JsonTest, RoundTripsNumbersExactly) {
  json::Value doc = json::Value::Array();
  doc.Append(int64_t{9007199254740993});  // Not representable as double.
  doc.Append(0.1);
  doc.Append(-2.5e-7);
  const auto parsed = json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().items()[0].AsInt(), 9007199254740993);
  EXPECT_DOUBLE_EQ(parsed.value().items()[1].AsDouble(), 0.1);
  EXPECT_DOUBLE_EQ(parsed.value().items()[2].AsDouble(), -2.5e-7);
  EXPECT_EQ(json::Parse(doc.Dump()).value().Dump(), doc.Dump());
}

TEST(JsonTest, ParserHandlesEscapesAndSurrogates) {
  const auto doc = json::Parse(R"({"s": "a\"b\\c\ndé😀"})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().at("s").AsString(),
            "a\"b\\c\nd\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(JsonTest, ParserPreservesMemberOrderAndLastDuplicateWins) {
  const auto doc = json::Parse(R"({"z": 1, "a": 2, "z": 3})");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().members().size(), 2u);
  EXPECT_EQ(doc.value().members()[0].first, "z");
  EXPECT_EQ(doc.value().at("z").AsInt(), 3);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_FALSE(json::Parse("nul").ok());
  // Depth cap: 70 nested arrays exceed the 64 limit.
  EXPECT_FALSE(json::Parse(std::string(70, '[') + std::string(70, ']')).ok());
  // Errors carry a byte offset.
  EXPECT_NE(json::Parse("[1, oops]").status().message().find("byte"),
            std::string::npos);
}

TEST(JsonTest, LooseAccessorsDefaultOnMismatch) {
  const json::Value v = 42;
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_EQ(v.AsDouble(), 42.0);  // Ints read as doubles.
  EXPECT_EQ(v.AsString(), "");
  EXPECT_TRUE(v.items().empty());
  EXPECT_TRUE(json::Value().at("missing").is_null());
}

}  // namespace
}  // namespace recon
