// White-box tests of the fixed-point solver over small hand-built
// datasets: propagation mechanics, value-node certification, enrichment
// folding behaviour, and negative-evidence propagation (the Figure 2/3/4
// machinery at unit scale).

#include <gtest/gtest.h>

#include "core/graph_builder.h"
#include "core/reconciler.h"
#include "core/solver.h"
#include "eval/metrics.h"
#include "model/dataset.h"
#include "strsim/phonetic.h"

namespace recon {
namespace {

class SolverTest : public ::testing::Test {
 protected:
  SolverTest() : data_(BuildPimSchema()) {
    const Schema& s = data_.schema();
    person_ = s.RequireClass("Person");
    article_ = s.RequireClass("Article");
    venue_ = s.RequireClass("Venue");
    p_name_ = s.RequireAttribute(person_, "name");
    p_email_ = s.RequireAttribute(person_, "email");
    p_contact_ = s.RequireAttribute(person_, "emailContact");
    a_title_ = s.RequireAttribute(article_, "title");
    a_authors_ = s.RequireAttribute(article_, "authoredBy");
    a_venue_ = s.RequireAttribute(article_, "publishedIn");
    v_name_ = s.RequireAttribute(venue_, "name");
    v_year_ = s.RequireAttribute(venue_, "year");
  }

  RefId Person(const std::string& name, const std::string& email = "") {
    const RefId id = data_.NewReference(person_, -1);
    if (!name.empty()) data_.mutable_reference(id).AddAtomicValue(p_name_, name);
    if (!email.empty()) {
      data_.mutable_reference(id).AddAtomicValue(p_email_, email);
    }
    return id;
  }

  RefId Venue(const std::string& name, const std::string& year) {
    const RefId id = data_.NewReference(venue_, -1);
    data_.mutable_reference(id).AddAtomicValue(v_name_, name);
    data_.mutable_reference(id).AddAtomicValue(v_year_, year);
    return id;
  }

  RefId Article(const std::string& title, std::vector<RefId> authors,
                RefId venue) {
    const RefId id = data_.NewReference(article_, -1);
    Reference& ref = data_.mutable_reference(id);
    ref.AddAtomicValue(a_title_, title);
    for (const RefId a : authors) ref.AddAssociation(a_authors_, a);
    if (venue != kInvalidRef) ref.AddAssociation(a_venue_, venue);
    return id;
  }

  /// Runs the solver and returns the final graph for inspection.
  ReconcileResult RunAndKeepGraph(BuiltGraph* out,
                                  ReconcilerOptions options =
                                      ReconcilerOptions::DepGraph()) {
    *out = BuildDependencyGraph(data_, options);
    const Reconciler reconciler(options);
    return reconciler.RunOnGraph(data_, *out);
  }

  Dataset data_;
  int person_, article_, venue_;
  int p_name_, p_email_, p_contact_;
  int a_title_, a_authors_, a_venue_;
  int v_name_, v_year_;
};

TEST_F(SolverTest, VenueValuePairCertifiedByMergedVenues) {
  // Two articles with the same title published in "VLDB" / full-form
  // venues; a third venue pair with the same two name strings must get
  // certified name evidence after the first venue pair merges (Fig. 2 n6).
  const RefId v1 = Venue("International Conference on Very Large Data Bases",
                         "1999");
  const RefId v2 = Venue("VLDB", "1999");
  const RefId a1 = Article("Adaptive query processing for streams", {}, v1);
  const RefId a2 = Article("Adaptive query processing for streams", {}, v2);
  // The same two venue-name strings again, same year: no articles connect
  // them directly.
  const RefId v3 = Venue("International Conference on Very Large Data Bases",
                         "1999");
  const RefId v4 = Venue("VLDB", "1999");
  (void)a1;
  (void)a2;

  BuiltGraph built;
  const ReconcileResult result = RunAndKeepGraph(&built);
  EXPECT_EQ(result.cluster[v1], result.cluster[v2]);
  // v3/v4 carry the certified value pair: they merge with full confidence
  // (and indeed into the same venue cluster).
  EXPECT_EQ(result.cluster[v3], result.cluster[v4]);
}

TEST_F(SolverTest, ArticleMergePropagatesToAuthors) {
  const RefId p1 = Person("Robert S. Epstein");
  const RefId p2 = Person("Epstein, R.S.");
  const RefId a1 = Article("Distributed query processing", {p1}, kInvalidRef);
  const RefId a2 = Article("Distributed query processing", {p2}, kInvalidRef);
  (void)a1;
  (void)a2;
  const ReconcileResult result =
      Reconciler(ReconcilerOptions::DepGraph()).Run(data_);
  // Abbreviated name alone (0.8) cannot merge; the article merge adds
  // strong-boolean evidence that pushes it over.
  EXPECT_EQ(result.cluster[p1], result.cluster[p2]);
}

TEST_F(SolverTest, WithoutPropagationAuthorsStayApart) {
  const RefId p1 = Person("Robert S. Epstein");
  const RefId p2 = Person("Epstein, R.S.");
  Article("Distributed query processing", {p1}, kInvalidRef);
  Article("Distributed query processing", {p2}, kInvalidRef);
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.propagation = false;
  options.enrichment = false;
  // In a single dependency-ordered pass, persons are computed before
  // articles, so the article merge comes too late to help them.
  const ReconcileResult result = Reconciler(options).Run(data_);
  EXPECT_NE(result.cluster[p1], result.cluster[p2]);
}

TEST_F(SolverTest, EnrichmentBridgesThroughPooledEvidence) {
  // The paper's p5/p8/p9 story in miniature: "Stonebraker, M." reaches the
  // email-only reference only after "Michael Stonebraker" is pooled into
  // its cluster (enrichment) *and* a common contact is established — name
  // plus name~email evidence alone stays just below the threshold, exactly
  // as §2.2 narrates.
  const RefId p5 = Person("Stonebraker, M.");
  const RefId p8 = Person("", "stonebraker@csail.mit.edu");
  const RefId p9 = Person("Michael Stonebraker", "stonebraker@csail.mit.edu");
  // The Wong contact pair (p6 ~ p7 in the paper).
  const RefId p6 = Person("Eugene Wong");
  const RefId p7 = Person("Eugene Wong", "eugene@berkeley.edu");
  data_.mutable_reference(p5).AddAssociation(p_contact_, p6);
  data_.mutable_reference(p6).AddAssociation(p_contact_, p5);
  data_.mutable_reference(p8).AddAssociation(p_contact_, p7);
  data_.mutable_reference(p7).AddAssociation(p_contact_, p8);

  const ReconcileResult result =
      Reconciler(ReconcilerOptions::DepGraph()).Run(data_);
  EXPECT_EQ(result.cluster[p8], result.cluster[p9]);  // Email key.
  EXPECT_EQ(result.cluster[p6], result.cluster[p7]);  // Identical names.
  EXPECT_EQ(result.cluster[p5], result.cluster[p9]);  // The §2.2 bridge.

  // Counterfactual: without the contact link, the bridge must NOT form.
  Dataset bare(BuildPimSchema());
  const RefId q5 = bare.NewReference(person_, -1);
  bare.mutable_reference(q5).AddAtomicValue(p_name_, "Stonebraker, M.");
  const RefId q8 = bare.NewReference(person_, -1);
  bare.mutable_reference(q8).AddAtomicValue(p_email_,
                                            "stonebraker@csail.mit.edu");
  const RefId q9 = bare.NewReference(person_, -1);
  bare.mutable_reference(q9).AddAtomicValue(p_name_, "Michael Stonebraker");
  bare.mutable_reference(q9).AddAtomicValue(p_email_,
                                            "stonebraker@csail.mit.edu");
  const ReconcileResult counterfactual =
      Reconciler(ReconcilerOptions::DepGraph()).Run(bare);
  EXPECT_EQ(counterfactual.cluster[q8], counterfactual.cluster[q9]);
  EXPECT_NE(counterfactual.cluster[q5], counterfactual.cluster[q9]);
}

TEST_F(SolverTest, NegativeEvidencePropagatesAtFixpoint) {
  // w is constrained apart from the Mary-Smith cluster (same first,
  // different last). A reference x similar to both must not glue them.
  const RefId a = Person("Mary Smith", "msmith@x.edu");
  const RefId b = Person("Mary Smith", "msmith@x.edu");
  const RefId w = Person("Mary Jones", "mjones@y.edu");
  // x: compatible-ish with both sides (bare name), contacts shared with
  // both.
  const RefId x = Person("mary");
  for (const RefId p : {a, b, w}) {
    data_.mutable_reference(x).AddAssociation(p_contact_, p);
    data_.mutable_reference(p).AddAssociation(p_contact_, x);
  }
  const ReconcileResult result =
      Reconciler(ReconcilerOptions::DepGraph()).Run(data_);
  EXPECT_EQ(result.cluster[a], result.cluster[b]);
  EXPECT_NE(result.cluster[a], result.cluster[w]);
}

TEST_F(SolverTest, StatsCountFoldsOnlyWithEnrichment) {
  for (int i = 0; i < 4; ++i) Person("Eugene Wong", "ew@x.edu");
  ReconcilerOptions with = ReconcilerOptions::DepGraph();
  with.premerge_equal_emails = false;
  ReconcilerOptions without = with;
  without.enrichment = false;
  const ReconcileResult r_with = Reconciler(with).Run(data_);
  const ReconcileResult r_without = Reconciler(without).Run(data_);
  EXPECT_GT(r_with.stats.num_folds, 0);
  EXPECT_EQ(r_without.stats.num_folds, 0);
  // Same final partition either way here (everything key-merges).
  EXPECT_EQ(r_with.cluster, r_without.cluster);
}

TEST_F(SolverTest, SolverIsReentrantAfterManualEnqueue) {
  const RefId p1 = Person("Eugene Wong", "ew@x.edu");
  const RefId p2 = Person("Eugene Wong", "ew@x.edu");
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;
  BuiltGraph built = BuildDependencyGraph(data_, options);
  ReconcileStats stats;
  FixedPointSolver solver(data_, built, options, &stats);
  solver.EnqueueNodes(built.initial_queue);
  solver.Run();
  // Re-running with an empty queue is a no-op; re-enqueueing the same
  // nodes converges instantly (sims are already at fixpoint).
  solver.Run();
  const int64_t recomputes = stats.num_recomputations;
  solver.EnqueueNodes(built.initial_queue);
  solver.Run();
  EXPECT_LE(stats.num_recomputations, recomputes + 2);
  const std::vector<int> clusters = solver.Closure(nullptr);
  EXPECT_EQ(clusters[p1], clusters[p2]);
}

// ---- Soundex ------------------------------------------------------------------

TEST(SoundexTest, ClassicCodes) {
  EXPECT_EQ(strsim::Soundex("Robert"), "R163");
  EXPECT_EQ(strsim::Soundex("Rupert"), "R163");
  EXPECT_EQ(strsim::Soundex("Ashcraft"), "A261");
  EXPECT_EQ(strsim::Soundex("Ashcroft"), "A261");
  EXPECT_EQ(strsim::Soundex("Tymczak"), "T522");
  EXPECT_EQ(strsim::Soundex("Pfister"), "P236");
  EXPECT_EQ(strsim::Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, EdgeCases) {
  EXPECT_EQ(strsim::Soundex(""), "");
  EXPECT_EQ(strsim::Soundex("123"), "");
  EXPECT_EQ(strsim::Soundex("A"), "A000");
  EXPECT_EQ(strsim::Soundex("  o'Brien "), "O165");
}

TEST(SoundexTest, Equality) {
  EXPECT_TRUE(strsim::SoundexEqual("Stonebraker", "Stonebreaker"));
  EXPECT_FALSE(strsim::SoundexEqual("Wong", "Epstein"));
  EXPECT_FALSE(strsim::SoundexEqual("", ""));
}

}  // namespace
}  // namespace recon
