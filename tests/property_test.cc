// Parameterized property tests: invariants that must hold for every
// comparator over a broad sweep of inputs, and for the reconciler over
// every configuration.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "sim/comparators.h"
#include "strsim/edit_distance.h"
#include "strsim/jaro_winkler.h"
#include "strsim/tokens.h"

namespace recon {
namespace {

// ---- Comparator properties over a diverse string sweep ---------------------

const std::vector<std::string>& SweepStrings() {
  static const auto* strings = new std::vector<std::string>{
      "",
      "a",
      "mike",
      "Mike",
      "Eugene Wong",
      "Wong, E.",
      "Epstein, R.S.",
      "Robert S. Epstein",
      "stonebraker@csail.mit.edu",
      "STONEBRAKER@MIT.EDU",
      "ACM SIGMOD",
      "Proceedings of the International Conference on Very Large Data Bases",
      "169-180",
      "1978",
      "Austin, Texas",
      "Distributed query processing in a relational data base system",
      "   whitespace   padded   ",
      "unicode-free but-weird..punctuation!!",
      "Li Wei",
      "van der Berg, J.",
  };
  return *strings;
}

using StringPair = std::tuple<std::string, std::string>;

class ComparatorPropertyTest : public ::testing::TestWithParam<StringPair> {};

TEST_P(ComparatorPropertyTest, AllComparatorsBoundedAndSymmetric) {
  const auto& [a, b] = GetParam();
  using Comparator = double (*)(const std::string&, const std::string&);
  const Comparator comparators[] = {
      PersonNameFieldSimilarity, EmailFieldSimilarity, TitleFieldSimilarity,
      VenueNameFieldSimilarity,  YearFieldSimilarity,  PagesFieldSimilarity,
      LocationFieldSimilarity,
  };
  for (const Comparator comparator : comparators) {
    const double ab = comparator(a, b);
    const double ba = comparator(b, a);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(ab, ba) << "'" << a << "' vs '" << b << "'";
  }
}

TEST_P(ComparatorPropertyTest, LowLevelMeasuresBoundedAndSymmetric) {
  const auto& [a, b] = GetParam();
  for (const double sim : {strsim::EditSimilarity(a, b),
                           strsim::JaroWinklerSimilarity(a, b),
                           strsim::NgramSimilarity(a, b)}) {
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
  EXPECT_DOUBLE_EQ(strsim::JaroWinklerSimilarity(a, b),
                   strsim::JaroWinklerSimilarity(b, a));
  EXPECT_EQ(strsim::LevenshteinDistance(a, b),
            strsim::LevenshteinDistance(b, a));
}

TEST_P(ComparatorPropertyTest, IdentityGivesMaximalScoreOfItsClass) {
  const auto& [a, b] = GetParam();
  (void)b;
  // Self-similarity must be at least as high as similarity to anything
  // else for the generic string measures.
  const double self = strsim::EditSimilarity(a, a);
  EXPECT_DOUBLE_EQ(self, 1.0);
  EXPECT_DOUBLE_EQ(strsim::JaroWinklerSimilarity(a, a), a.empty() ? 1.0 : 1.0);
}

std::vector<StringPair> AllSweepPairs() {
  std::vector<StringPair> pairs;
  const auto& strings = SweepStrings();
  for (size_t i = 0; i < strings.size(); ++i) {
    for (size_t j = i; j < strings.size(); ++j) {
      pairs.emplace_back(strings[i], strings[j]);
    }
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(StringSweep, ComparatorPropertyTest,
                         ::testing::ValuesIn(AllSweepPairs()));

// ---- Reconciler invariants over every configuration -------------------------

struct ConfigCase {
  EvidenceLevel level;
  bool propagation;
  bool enrichment;
  bool constraints;
};

class ReconcilerConfigTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(ReconcilerConfigTest, InvariantsHoldForEveryConfiguration) {
  const ConfigCase& c = GetParam();
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.02);
  config.seed = 404;
  const Dataset data = datagen::GeneratePim(config);

  ReconcilerOptions options;
  options.evidence_level = c.level;
  options.propagation = c.propagation;
  options.enrichment = c.enrichment;
  options.constraints = c.constraints;
  const Reconciler reconciler(options);
  const ReconcileResult result = reconciler.Run(data);

  // Clusters form a canonical partition that never mixes classes.
  ASSERT_EQ(static_cast<int>(result.cluster.size()), data.num_references());
  for (RefId id = 0; id < data.num_references(); ++id) {
    const int rep = result.cluster[id];
    ASSERT_GE(rep, 0);
    ASSERT_LT(rep, data.num_references());
    EXPECT_EQ(result.cluster[rep], rep);
    EXPECT_EQ(data.reference(rep).class_id(), data.reference(id).class_id());
  }
  // Merged pairs are consistent with the closure.
  for (const auto& [a, b] : result.merged_pairs) {
    EXPECT_EQ(result.cluster[a], result.cluster[b]);
    EXPECT_EQ(data.reference(a).class_id(), data.reference(b).class_id());
  }
  // Determinism.
  const ReconcileResult again = reconciler.Run(data);
  EXPECT_EQ(result.cluster, again.cluster);
}

std::vector<ConfigCase> AllConfigs() {
  std::vector<ConfigCase> configs;
  for (const EvidenceLevel level :
       {EvidenceLevel::kAttrWise, EvidenceLevel::kNameEmail,
        EvidenceLevel::kArticle, EvidenceLevel::kContact}) {
    for (const bool propagation : {false, true}) {
      for (const bool enrichment : {false, true}) {
        for (const bool constraints : {false, true}) {
          configs.push_back({level, propagation, enrichment, constraints});
        }
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(AllModes, ReconcilerConfigTest,
                         ::testing::ValuesIn(AllConfigs()));

}  // namespace
}  // namespace recon
