// The delta-propagated evidence cache (ReconcilerOptions::evidence_cache)
// must be undetectable in the output: cached and uncached fixed points
// produce identical partitions, merged pairs, merge/recomputation stats,
// and eval metrics on PIM and Cora data, across thread counts, constraints
// on/off, and enrichment on/off. Runs under ThreadSanitizer via the ctest
// `tsan` label alongside the runtime tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "model/dataset.h"

namespace recon {
namespace {

Dataset SmallPim() {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.10);
  return datagen::GeneratePim(config);
}

Dataset SmallCora() {
  datagen::CoraConfig config;
  config.num_papers = 30;
  config.num_citations = 300;
  config.num_authors = 60;
  config.num_venue_series = 12;
  return datagen::GenerateCora(config);
}

/// Runs `base` with the evidence cache off and on and asserts every
/// observable output matches (the new cache counters are exempt — they
/// exist precisely to differ).
void ExpectCacheInvisible(const Dataset& dataset, ReconcilerOptions base,
                          const std::string& label) {
  SCOPED_TRACE(label);
  base.evidence_cache = false;
  const ReconcileResult off = Reconciler(base).Run(dataset);
  base.evidence_cache = true;
  const ReconcileResult on = Reconciler(base).Run(dataset);

  EXPECT_EQ(off.cluster, on.cluster);
  EXPECT_EQ(off.merged_pairs, on.merged_pairs);
  EXPECT_EQ(off.stats.num_candidates, on.stats.num_candidates);
  EXPECT_EQ(off.stats.num_nodes, on.stats.num_nodes);
  EXPECT_EQ(off.stats.num_live_nodes, on.stats.num_live_nodes);
  EXPECT_EQ(off.stats.num_edges, on.stats.num_edges);
  EXPECT_EQ(off.stats.num_recomputations, on.stats.num_recomputations);
  EXPECT_EQ(off.stats.num_merges, on.stats.num_merges);
  EXPECT_EQ(off.stats.num_folds, on.stats.num_folds);

  for (int c = 0; c < dataset.schema().num_classes(); ++c) {
    const PairMetrics m_off = EvaluateClass(dataset, off.cluster, c);
    const PairMetrics m_on = EvaluateClass(dataset, on.cluster, c);
    EXPECT_EQ(m_off.precision, m_on.precision);
    EXPECT_EQ(m_off.recall, m_on.recall);
    EXPECT_EQ(m_off.f1, m_on.f1);
    EXPECT_EQ(m_off.num_partitions, m_on.num_partitions);
  }
}

void SweepOptions(const Dataset& dataset, const std::string& dataset_name) {
  for (const int threads : {1, 4}) {
    for (const bool constraints : {true, false}) {
      for (const bool enrichment : {true, false}) {
        ReconcilerOptions options = ReconcilerOptions::DepGraph();
        options.num_threads = threads;
        options.constraints = constraints;
        options.enrichment = enrichment;
        ExpectCacheInvisible(
            dataset, options,
            dataset_name + " threads=" + std::to_string(threads) +
                " constraints=" + std::to_string(constraints) +
                " enrichment=" + std::to_string(enrichment));
      }
    }
  }
}

TEST(SolverCacheTest, PimSweep) { SweepOptions(SmallPim(), "PIM-A"); }

TEST(SolverCacheTest, CoraSweep) { SweepOptions(SmallCora(), "Cora"); }

TEST(SolverCacheTest, EvidenceLevelsMatch) {
  const Dataset dataset = SmallPim();
  for (const EvidenceLevel level :
       {EvidenceLevel::kAttrWise, EvidenceLevel::kNameEmail,
        EvidenceLevel::kArticle, EvidenceLevel::kContact}) {
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.evidence_level = level;
    ExpectCacheInvisible(dataset, options,
                         "level=" + std::to_string(static_cast<int>(level)));
  }
}

TEST(SolverCacheTest, CacheActuallyFires) {
  // The sweep proves invisibility; this proves the cache is doing work —
  // hub nodes wake up repeatedly, so most recomputations should be served
  // without rescanning in-edges.
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  const ReconcileResult result = Reconciler(options).Run(dataset);
  EXPECT_GT(result.stats.num_cache_rebuilds, 0);
  EXPECT_GT(result.stats.num_delta_pushes, 0);
  EXPECT_GT(result.stats.num_inedge_scans_avoided, 0);

  options.evidence_cache = false;
  const ReconcileResult off = Reconciler(options).Run(dataset);
  EXPECT_EQ(off.stats.num_cache_rebuilds, 0);
  EXPECT_EQ(off.stats.num_delta_pushes, 0);
  EXPECT_EQ(off.stats.num_inedge_scans_avoided, 0);
  // The point of the cache: strictly fewer in-edge scans.
  EXPECT_LT(result.stats.num_inedge_scans, off.stats.num_inedge_scans);
}

TEST(SolverCacheTest, IncrementalBatchesMatch) {
  // Incremental reconciliation re-enters the solver after graph surgery
  // and constraint demotion — the invalidation hooks must keep batches
  // byte-identical too.
  const Dataset dataset = SmallPim();
  std::vector<std::vector<int>> clusters;
  for (const bool cached : {false, true}) {
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.evidence_cache = cached;
    IncrementalReconciler inc(Dataset(dataset.schema()), options);
    for (RefId id = 0; id < dataset.num_references(); ++id) {
      inc.AddReference(dataset.reference(id), /*gold_entity=*/-1,
                       dataset.provenance(id));
      if (id % 97 == 0) inc.Flush();
    }
    clusters.push_back(inc.clusters());
  }
  EXPECT_EQ(clusters[0], clusters[1]);
}

}  // namespace
}  // namespace recon
