#include <gtest/gtest.h>

#include <sstream>

#include "eval/metrics.h"
#include "eval/report.h"
#include "model/dataset.h"

namespace recon {
namespace {

/// Dataset with 6 persons: gold entities {0,0,0}, {1,1}, {2}.
Dataset SixPersons() {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  for (const int gold : {0, 0, 0, 1, 1, 2}) {
    data.NewReference(person, gold);
  }
  return data;
}

TEST(MetricsTest, PerfectClustering) {
  const Dataset data = SixPersons();
  const std::vector<int> cluster = {0, 0, 0, 3, 3, 5};
  const PairMetrics m = EvaluateClass(data, cluster, 0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.true_pairs, 4);  // C(3,2) + C(2,2) = 3 + 1.
  EXPECT_EQ(m.predicted_pairs, 4);
  EXPECT_EQ(m.num_partitions, 3);
  EXPECT_EQ(m.num_entities, 3);
}

TEST(MetricsTest, UnderMerging) {
  const Dataset data = SixPersons();
  // Entity 0 split into {0,1} and {2}: lose 2 of 3 pairs.
  const std::vector<int> cluster = {0, 0, 2, 3, 3, 5};
  const PairMetrics m = EvaluateClass(data, cluster, 0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);  // 2 of 4 true pairs.
  EXPECT_EQ(m.num_partitions, 4);
}

TEST(MetricsTest, OverMerging) {
  const Dataset data = SixPersons();
  // Everything into one cluster: all true pairs found, many wrong pairs.
  const std::vector<int> cluster = {0, 0, 0, 0, 0, 0};
  const PairMetrics m = EvaluateClass(data, cluster, 0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 4.0 / 15.0);
  EXPECT_EQ(m.num_partitions, 1);
}

TEST(MetricsTest, SingletonsOnlyIsVacuouslyPerfectPrecision) {
  const Dataset data = SixPersons();
  const std::vector<int> cluster = {0, 1, 2, 3, 4, 5};
  const PairMetrics m = EvaluateClass(data, cluster, 0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MetricsTest, IgnoresOtherClassesAndUnlabeled) {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  const int article = data.schema().RequireClass("Article");
  data.NewReference(person, 0);
  data.NewReference(person, 0);
  data.NewReference(article, 7);
  data.NewReference(person, -1);  // Unlabeled.
  const std::vector<int> cluster = {0, 0, 0, 0};  // Glues everything.
  const PairMetrics m = EvaluateClass(data, cluster, person);
  EXPECT_EQ(m.true_pairs, 1);
  EXPECT_EQ(m.predicted_pairs, 1);  // Article and unlabeled excluded.
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
}

TEST(MetricsTest, FMeasureDefinition) {
  EXPECT_DOUBLE_EQ(FMeasure(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(FMeasure(0.0, 0.0), 0.0);
  EXPECT_NEAR(FMeasure(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, AverageMetrics) {
  PairMetrics a;
  a.precision = 1.0;
  a.recall = 0.5;
  PairMetrics b;
  b.precision = 0.5;
  b.recall = 1.0;
  const PairMetrics avg = AverageMetrics({a, b});
  EXPECT_DOUBLE_EQ(avg.precision, 0.75);
  EXPECT_DOUBLE_EQ(avg.recall, 0.75);
  EXPECT_DOUBLE_EQ(avg.f1, 0.75);
}

TEST(MetricsTest, EntitiesWithFalsePositives) {
  const Dataset data = SixPersons();
  // Cluster {ref2 (entity 0), ref3 (entity 1)} mixes entities 0 and 1.
  const std::vector<int> cluster = {0, 0, 2, 2, 4, 5};
  EXPECT_EQ(EntitiesWithFalsePositives(data, cluster, 0), 2);
  const std::vector<int> clean = {0, 0, 0, 3, 3, 5};
  EXPECT_EQ(EntitiesWithFalsePositives(data, clean, 0), 0);
}

TEST(BCubedTest, PerfectClusteringScoresOne) {
  const Dataset data = SixPersons();
  const std::vector<int> cluster = {0, 0, 0, 3, 3, 5};
  const BCubedMetrics m = EvaluateBCubed(data, cluster, 0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(BCubedTest, SplitEntityLosesRecallOnly) {
  const Dataset data = SixPersons();
  const std::vector<int> cluster = {0, 0, 2, 3, 3, 5};  // Entity 0 split.
  const BCubedMetrics m = EvaluateBCubed(data, cluster, 0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  // refs 0,1: recall 2/3 each; ref 2: 1/3; refs 3,4,5: 1.
  EXPECT_NEAR(m.recall, (2.0 / 3 + 2.0 / 3 + 1.0 / 3 + 3) / 6, 1e-12);
}

TEST(BCubedTest, GluedClusterLosesPrecisionOnly) {
  const Dataset data = SixPersons();
  const std::vector<int> cluster = {0, 0, 0, 0, 0, 5};  // Glue 0 and 1.
  const BCubedMetrics m = EvaluateBCubed(data, cluster, 0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  // refs 0-2: precision 3/5; refs 3,4: 2/5; ref 5: 1.
  EXPECT_NEAR(m.precision, (3 * 0.6 + 2 * 0.4 + 1) / 6, 1e-12);
}

TEST(BCubedTest, LessDominatedByLargeEntitiesThanPairwise) {
  // One 20-ref entity split in half + 10 perfect singletons: pairwise
  // recall craters, B-cubed recall degrades gracefully.
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  std::vector<int> cluster;
  for (int i = 0; i < 20; ++i) {
    data.NewReference(person, 0);
    cluster.push_back(i < 10 ? 0 : 10);
  }
  for (int i = 0; i < 10; ++i) {
    data.NewReference(person, 1 + i);
    cluster.push_back(20 + i);
  }
  const PairMetrics pair = EvaluateClass(data, cluster, person);
  const BCubedMetrics bcubed = EvaluateBCubed(data, cluster, person);
  EXPECT_LT(pair.recall, bcubed.recall);
}

TEST(ReportTest, TablePrinterAligns) {
  TablePrinter table({"A", "Bee"});
  table.AddRow({"xx", "y"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| A  | Bee |"), std::string::npos);
  EXPECT_NE(out.find("| xx | y   |"), std::string::npos);
  EXPECT_NE(out.find("| 1  |     |"), std::string::npos);
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(TablePrinter::PrecRecall(0.9666, 0.926), "0.967/0.926");
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace recon
