// Tests for the reconciliation service layer (DESIGN.md §12): snapshot
// construction, OpenRefine-shaped query scoring, ingest under snapshot
// isolation, and — the part worth running under TSan (`ctest -L tsan`) —
// concurrent query threads racing a live ingest/flush loop.

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/handlers.h"
#include "service/service.h"
#include "service/snapshot.h"

namespace recon::service {
namespace {

/// Three persons: two spellings of Alice sharing an email (they must
/// reconcile), plus an unrelated Bob.
Dataset SmallPersonDataset() {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  const int name = data.schema().RequireAttribute(person, "name");
  const int email = data.schema().RequireAttribute(person, "email");
  const RefId a = data.NewReference(person, 0);
  data.mutable_reference(a).AddAtomicValue(name, "Alice Smith");
  data.mutable_reference(a).AddAtomicValue(email, "alice@x.edu");
  const RefId b = data.NewReference(person, 0);
  data.mutable_reference(b).AddAtomicValue(name, "A. Smith");
  data.mutable_reference(b).AddAtomicValue(email, "alice@x.edu");
  const RefId c = data.NewReference(person, 1);
  data.mutable_reference(c).AddAtomicValue(name, "Bob Jones");
  data.mutable_reference(c).AddAtomicValue(email, "bob@y.edu");
  return data;
}

ServiceOptions DefaultOptions() {
  ServiceOptions options;
  options.reconciler = ReconcilerOptions::DepGraph();
  return options;
}

Reference MakePerson(const Schema& schema, const std::string& name,
                     const std::string& email) {
  const int person = schema.RequireClass("Person");
  Reference ref(person, schema.class_def(person).num_attributes());
  ref.AddAtomicValue(schema.RequireAttribute(person, "name"), name);
  if (!email.empty()) {
    ref.AddAtomicValue(schema.RequireAttribute(person, "email"), email);
  }
  return ref;
}

// ---- Snapshot construction -------------------------------------------------

TEST(ServiceTest, InitialSnapshotReconcilesAndProfiles) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  const auto snapshot = service.snapshot();
  EXPECT_EQ(snapshot->generation(), 0u);
  EXPECT_EQ(snapshot->num_references(), 3);
  ASSERT_EQ(snapshot->num_entities(), 2);  // {Alice, A. Smith} and {Bob}.

  // Entities are ordered by smallest member RefId: e0 = Alice.
  const EntityInfo& alice = snapshot->entity(0);
  EXPECT_EQ(alice.members, (std::vector<RefId>{0, 1}));
  EXPECT_EQ(alice.display_name, "Alice Smith");
  EXPECT_EQ(snapshot->EntityOfRef(0), 0);
  EXPECT_EQ(snapshot->EntityOfRef(1), 0);
  EXPECT_EQ(snapshot->EntityOfRef(2), 1);
  EXPECT_EQ(snapshot->EntityOfRef(99), -1);

  // The profile merges member values (both name spellings, one email).
  const Reference& profile = snapshot->profile(0);
  const int person = snapshot->schema().RequireClass("Person");
  const int name = snapshot->schema().RequireAttribute(person, "name");
  EXPECT_EQ(profile.atomic_values(name).size(), 2u);
}

// ---- Query scoring ---------------------------------------------------------

TEST(ServiceTest, QueryFindsEntityByNameAndEmail) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  ReconQuery query;
  query.text = "Alice Smith";
  query.type = "Person";
  query.properties.emplace_back("email", "alice@x.edu");
  const BatchAnswer answer = service.Reconcile({query});
  ASSERT_EQ(answer.results.size(), 1u);
  const QueryResult& result = answer.results[0];
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_EQ(result.candidates[0].entity, 0);
  // Exact name + exact email: S_rv saturates and the match is confident.
  EXPECT_DOUBLE_EQ(result.candidates[0].score, 1.0);
  EXPECT_TRUE(result.candidates[0].match);
  EXPECT_FALSE(result.degraded);
}

TEST(ServiceTest, QueryUnknownTypeAndNoTextAreEmpty) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  ReconQuery unknown;
  unknown.text = "Alice Smith";
  unknown.type = "Spaceship";
  EXPECT_TRUE(service.Reconcile({unknown}).results[0].candidates.empty());
  ReconQuery empty;
  empty.type = "Person";
  EXPECT_TRUE(service.Reconcile({empty}).results[0].candidates.empty());
}

TEST(ServiceTest, QueryHonorsLimit) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  ReconQuery query;
  query.text = "Smith Jones";  // Blocks against both entities.
  query.type = "Person";
  query.limit = 1;
  const BatchAnswer answer = service.Reconcile({query});
  EXPECT_LE(answer.results[0].candidates.size(), 1u);
}

TEST(ServiceTest, ExpiredDeadlineDegradesInsteadOfStalling) {
  ServiceOptions options = DefaultOptions();
  options.query_deadline_ms = 1e-9;  // Already expired when scoring starts.
  ReconService service(SmallPersonDataset(), options);
  ReconQuery query;
  query.text = "Alice Smith";
  query.type = "Person";
  const BatchAnswer answer = service.Reconcile({query});
  EXPECT_TRUE(answer.degraded);
  EXPECT_TRUE(answer.results[0].degraded);
  // Degraded, not failed: whatever was scored before the stop is returned.
  EXPECT_GE(answer.results[0].num_scored, 0);
}

// ---- Ingest / snapshot isolation -------------------------------------------

TEST(ServiceTest, IngestWithoutFlushStagesOnly) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  const auto before = service.snapshot();
  std::vector<Reference> refs;
  refs.push_back(MakePerson(service.schema(), "Carol White", "carol@z.org"));
  const auto report = service.Ingest(std::move(refs), {}, /*flush=*/false);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().added, 1);
  EXPECT_EQ(report.value().staged_total, 1);
  EXPECT_FALSE(report.value().flushed);
  EXPECT_EQ(report.value().generation, 0u);
  EXPECT_EQ(service.staged_references(), 1);
  // The published snapshot is untouched until a flush.
  EXPECT_EQ(service.snapshot().get(), before.get());

  EXPECT_EQ(service.Flush().value(), 1u);
  EXPECT_EQ(service.staged_references(), 0);
  EXPECT_EQ(service.snapshot()->generation(), 1u);
  EXPECT_EQ(service.snapshot()->num_references(), 4);
}

TEST(ServiceTest, IngestFlushMakesNewEntityQueryable) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  std::vector<Reference> refs;
  refs.push_back(MakePerson(service.schema(), "Dora Black", "dora@w.net"));
  const auto report = service.Ingest(std::move(refs), {7}, /*flush=*/true);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().flushed);
  EXPECT_EQ(report.value().generation, 1u);

  ReconQuery query;
  query.text = "Dora Black";
  query.type = "Person";
  const BatchAnswer answer = service.Reconcile({query});
  EXPECT_EQ(answer.snapshot->generation(), 1u);
  ASSERT_FALSE(answer.results[0].candidates.empty());
  const EntityId hit = answer.results[0].candidates[0].entity;
  EXPECT_EQ(answer.snapshot->entity(hit).display_name, "Dora Black");
}

TEST(ServiceTest, IngestRejectsBadAssociationTargets) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  const Schema& schema = service.schema();
  const int person = schema.RequireClass("Person");
  Reference bad(person, schema.class_def(person).num_attributes());
  bad.AddAssociation(schema.RequireAttribute(person, "coAuthor"), 999);
  std::vector<Reference> refs;
  refs.push_back(std::move(bad));
  const auto report = service.Ingest(std::move(refs), {}, /*flush=*/true);
  EXPECT_FALSE(report.ok());
  // Nothing was staged or published by the failed call.
  EXPECT_EQ(service.staged_references(), 0);
  EXPECT_EQ(service.snapshot()->generation(), 0u);
  EXPECT_EQ(service.snapshot()->num_references(), 3);
}

TEST(ServiceTest, GoldsLengthMismatchRejected) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  std::vector<Reference> refs;
  refs.push_back(MakePerson(service.schema(), "Eve Gray", ""));
  EXPECT_FALSE(service.Ingest(std::move(refs), {1, 2}, true).ok());
}

// ---- Handler-level parsing / rendering -------------------------------------

TEST(ServiceTest, ParseQueryBatchShapes) {
  const auto batch = ParseQueryBatch(
      R"({"a": "shorthand text",
          "b": {"query": "Bob", "type": {"id": "Person"}, "limit": 3,
                "properties": [{"pid": "email", "v": "bob@y.edu"},
                               {"p": "name", "v": ["X", "Y"]}]}})");
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), 2u);
  EXPECT_EQ(batch.value()[0].first, "a");
  EXPECT_EQ(batch.value()[0].second.text, "shorthand text");
  const ReconQuery& b = batch.value()[1].second;
  EXPECT_EQ(b.type, "Person");
  EXPECT_EQ(b.limit, 3);
  ASSERT_EQ(b.properties.size(), 3u);
  EXPECT_EQ(b.properties[0].first, "email");
  EXPECT_EQ(b.properties[1].second, "X");
  EXPECT_EQ(b.properties[2].second, "Y");

  EXPECT_FALSE(ParseQueryBatch("[1,2]").ok());
  EXPECT_FALSE(ParseQueryBatch("{\"q\": 42}").ok());
  EXPECT_FALSE(ParseQueryBatch("not json").ok());
}

TEST(ServiceTest, UrlDecodeHandlesEscapes) {
  EXPECT_EQ(UrlDecode("a+b%20c%7B%7d"), "a b c{}");
  EXPECT_EQ(UrlDecode("100%"), "100%");  // Dangling '%' passes through.
  EXPECT_EQ(UrlDecode("%zz"), "%zz");    // Non-hex passes through.
}

TEST(ServiceTest, RenderReconcileBodyShape) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  ReconQuery query;
  query.text = "Alice Smith";
  query.type = "Person";
  QueryBatch batch;
  batch.emplace_back("q0", query);
  const BatchAnswer answer = service.Reconcile({query});
  const std::string body = RenderReconcileBody(batch, answer);
  EXPECT_NE(body.find("\"q0\":{\"result\":[{\"id\":\"e0\""), std::string::npos);
  EXPECT_NE(body.find("\"_snapshot\":0"), std::string::npos);
}

// ---- Concurrency: readers race a live ingest/flush loop (TSan target) ------

TEST(ServiceTest, ConcurrentQueriesVsIngestFlushLoop) {
  ReconService service(SmallPersonDataset(), DefaultOptions());
  constexpr int kQueryThreads = 3;
  constexpr int kIngestBatches = 12;

  std::atomic<bool> done{false};
  std::atomic<int> torn_reads{0};
  std::atomic<int> generation_regressions{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&] {
      ReconQuery query;
      query.text = "Alice Smith";
      query.type = "Person";
      uint64_t last_generation = 0;
      while (!done.load(std::memory_order_acquire)) {
        const BatchAnswer answer = service.Reconcile({query, query});
        // Monotone generations per reader: an older snapshot must never
        // be published after a newer one was observed.
        const uint64_t generation = answer.snapshot->generation();
        if (generation < last_generation) ++generation_regressions;
        last_generation = generation;
        // Internal consistency: every candidate resolves against the
        // batch's own snapshot — a torn read (results from one snapshot,
        // pointer from another) would surface as an out-of-range entity.
        for (const QueryResult& result : answer.results) {
          for (const ScoredCandidate& candidate : result.candidates) {
            if (!answer.snapshot->ValidEntity(candidate.entity) ||
                answer.snapshot->entity(candidate.entity).class_id < 0) {
              ++torn_reads;
            }
          }
        }
      }
    });
  }

  uint64_t generation = 0;
  for (int i = 0; i < kIngestBatches; ++i) {
    std::vector<Reference> refs;
    refs.push_back(MakePerson(service.schema(),
                              "Person " + std::to_string(i),
                              "p" + std::to_string(i) + "@load.test"));
    const auto report = service.Ingest(std::move(refs), {}, /*flush=*/true);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().generation, generation + 1);
    generation = report.value().generation;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(generation_regressions.load(), 0);
  EXPECT_EQ(service.snapshot()->generation(),
            static_cast<uint64_t>(kIngestBatches));
  EXPECT_EQ(service.snapshot()->num_references(), 3 + kIngestBatches);
  // Reconciliation kept running under load: the final snapshot still
  // answers correctly.
  ReconQuery query;
  query.text = "Person 7";
  query.type = "Person";
  const BatchAnswer answer = service.Reconcile({query});
  ASSERT_FALSE(answer.results[0].candidates.empty());
}

}  // namespace
}  // namespace recon::service
