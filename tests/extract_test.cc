// Tests for the extraction substrate: email parsing, BibTeX parsing, the
// extractor, and the full generate -> render -> parse -> extract
// round-trip.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "datagen/render.h"
#include "eval/metrics.h"
#include "extract/bibtex_parser.h"
#include "extract/email_parser.h"
#include "extract/extractor.h"

namespace recon::extract {
namespace {

// ---- Address-list parsing ----------------------------------------------------

TEST(AddressListTest, BareAddress) {
  const auto list = ParseAddressList("eugene@berkeley.edu");
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].address, "eugene@berkeley.edu");
  EXPECT_TRUE(list[0].display_name.empty());
}

TEST(AddressListTest, NameAndAddress) {
  const auto list = ParseAddressList("Eugene Wong <eugene@berkeley.edu>");
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].display_name, "Eugene Wong");
  EXPECT_EQ(list[0].address, "eugene@berkeley.edu");
}

TEST(AddressListTest, QuotedNameWithComma) {
  const auto list = ParseAddressList("\"Wong, E.\" <ew@berkeley.edu>");
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].display_name, "Wong, E.");
  EXPECT_EQ(list[0].address, "ew@berkeley.edu");
}

TEST(AddressListTest, MultipleMailboxes) {
  const auto list = ParseAddressList(
      "\"Stonebraker, M.\" <msb@csail.mit.edu>, mike <m@x.edu>, e@y.edu");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].display_name, "Stonebraker, M.");
  EXPECT_EQ(list[1].display_name, "mike");
  EXPECT_EQ(list[1].address, "m@x.edu");
  EXPECT_EQ(list[2].address, "e@y.edu");
}

TEST(AddressListTest, NameOnly) {
  const auto list = ParseAddressList("\"dbgroup\"");
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].display_name, "dbgroup");
  EXPECT_TRUE(list[0].address.empty());
}

TEST(AddressListTest, EmptyAndWhitespace) {
  EXPECT_TRUE(ParseAddressList("").empty());
  EXPECT_TRUE(ParseAddressList("  , ,  ").empty());
}

TEST(AddressListTest, AngleOnlyAddress) {
  const auto list = ParseAddressList("<a@b.c>");
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].address, "a@b.c");
}

// ---- Message parsing ------------------------------------------------------------

TEST(EmailMessageTest, BasicMessage) {
  const auto result = ParseEmailMessage(
      "From: \"Eugene Wong\" <eugene@berkeley.edu>\n"
      "To: <stonebraker@csail.mit.edu>, \"Epstein, R.S.\" <rse@b.edu>\n"
      "Subject: draft\n"
      "\n"
      "body text ignored\n");
  ASSERT_TRUE(result.ok());
  const EmailMessage& m = result.value();
  ASSERT_EQ(m.from.size(), 1u);
  EXPECT_EQ(m.from[0].display_name, "Eugene Wong");
  ASSERT_EQ(m.to.size(), 2u);
  EXPECT_EQ(m.to[1].display_name, "Epstein, R.S.");
  EXPECT_EQ(m.subject, "draft");
}

TEST(EmailMessageTest, HeaderContinuationLines) {
  const auto result = ParseEmailMessage(
      "From: a@x.edu\n"
      "To: b@x.edu,\n"
      "  c@x.edu\n"
      "\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().to.size(), 2u);
}

TEST(EmailMessageTest, CcAndExtensionHeaders) {
  const auto result = ParseEmailMessage(
      "From: a@x.edu\nCc: d@x.edu\nX-Gold: a@x.edu=7\n\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().cc.size(), 1u);
  bool found = false;
  for (const auto& [name, value] : result.value().headers) {
    if (name == "x-gold") {
      EXPECT_EQ(value, "a@x.edu=7");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EmailMessageTest, GarbageFails) {
  EXPECT_FALSE(ParseEmailMessage("no headers here").ok());
  EXPECT_FALSE(ParseEmailMessage("").ok());
}

TEST(MboxTest, SplitsMessages) {
  const auto messages = ParseMbox(
      "From generator@localhost\n"
      "From: a@x.edu\nTo: b@x.edu\n\nbody\n"
      "From generator@localhost\n"
      "From: c@x.edu\nTo: d@x.edu\n\n");
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].from[0].address, "a@x.edu");
  EXPECT_EQ(messages[1].from[0].address, "c@x.edu");
}

// ---- BibTeX parsing ----------------------------------------------------------------

constexpr char kEntry[] = R"(
@InProceedings{epstein78,
  author    = {Robert S. Epstein and Michael Stonebraker and Wong, E.},
  title     = "Distributed query processing in a relational data base system",
  booktitle = {ACM SIGMOD},
  year      = 1978,
  pages     = {169--180},
  address   = {Austin, Texas},
}
)";

TEST(BibtexTest, ParsesEntry) {
  size_t pos = 0;
  const auto result = ParseNextBibtexEntry(kEntry, &pos);
  ASSERT_TRUE(result.ok());
  const BibtexEntry& entry = result.value();
  EXPECT_EQ(entry.type, "inproceedings");  // Lowercased.
  EXPECT_EQ(entry.key, "epstein78");
  EXPECT_EQ(entry.Field("title"),
            "Distributed query processing in a relational data base system");
  EXPECT_EQ(entry.Field("year"), "1978");
  EXPECT_EQ(entry.Field("pages"), "169--180");
  EXPECT_EQ(entry.Venue(), "ACM SIGMOD");
  const auto authors = entry.Authors();
  ASSERT_EQ(authors.size(), 3u);
  EXPECT_EQ(authors[0], "Robert S. Epstein");
  EXPECT_EQ(authors[2], "Wong, E.");
}

TEST(BibtexTest, NestedBracesAndJournal) {
  const char* input =
      "@article{k, title = {The {SQL} standard}, journal = {TODS}}";
  size_t pos = 0;
  const auto result = ParseNextBibtexEntry(input, &pos);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().Field("title"), "The {SQL} standard");
  EXPECT_EQ(result.value().Venue(), "TODS");
}

TEST(BibtexTest, MultilineValuesAreRefolded) {
  const char* input =
      "@article{k, title = {Line one\n      line two}}";
  size_t pos = 0;
  const auto result = ParseNextBibtexEntry(input, &pos);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().Field("title"), "Line one line two");
}

TEST(BibtexTest, FileWithNoiseBetweenEntries) {
  const std::string input = std::string("% a comment\n") + kEntry +
                            "\nstray text\n" + kEntry;
  const auto entries = ParseBibtexFile(input);
  EXPECT_EQ(entries.size(), 2u);
}

TEST(BibtexTest, MalformedEntriesAreSkipped) {
  const std::string input =
      "@article{broken, title = {unterminated\n" + std::string(kEntry);
  const auto entries = ParseBibtexFile(input);
  // The broken entry swallows text until it fails; at least the parse
  // must not loop or crash, and must return only well-formed entries.
  for (const auto& entry : entries) {
    EXPECT_FALSE(entry.Field("title").empty());
  }
}

TEST(BibtexTest, AuthorSplitIgnoresCase) {
  const auto authors = SplitBibtexAuthors("A. Smith AND B. Jones and C Wu");
  ASSERT_EQ(authors.size(), 3u);
  EXPECT_EQ(authors[1], "B. Jones");
}

// ---- Extractor ------------------------------------------------------------------------

TEST(ExtractorTest, MessageBecomesContactClique) {
  Extractor extractor;
  const auto message = ParseEmailMessage(
      "From: \"Eugene Wong\" <eugene@berkeley.edu>\n"
      "To: <stonebraker@csail.mit.edu>, mike <m@x.edu>\n\n");
  ASSERT_TRUE(message.ok());
  const auto refs = extractor.AddMessage(message.value());
  ASSERT_EQ(refs.size(), 3u);

  const Dataset& data = extractor.dataset();
  const int person = data.schema().RequireClass("Person");
  const int contact = data.schema().RequireAttribute(person, "emailContact");
  for (const RefId id : refs) {
    EXPECT_EQ(data.reference(id).class_id(), person);
    EXPECT_EQ(data.provenance(id), Provenance::kEmail);
    EXPECT_EQ(data.reference(id).associations(contact).size(), 2u);
  }
}

TEST(ExtractorTest, DuplicateMailboxesCollapse) {
  Extractor extractor;
  const auto message = ParseEmailMessage(
      "From: a@x.edu\nTo: a@x.edu, b@x.edu\nCc: b@x.edu\n\n");
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(extractor.AddMessage(message.value()).size(), 2u);
}

TEST(ExtractorTest, BibtexEntryBecomesFigure1Structure) {
  Extractor extractor;
  size_t pos = 0;
  const auto entry = ParseNextBibtexEntry(kEntry, &pos);
  ASSERT_TRUE(entry.ok());
  const auto refs = extractor.AddBibtexEntry(entry.value());
  // {article, venue, 3 authors}.
  ASSERT_EQ(refs.size(), 5u);

  const Dataset& data = extractor.dataset();
  const Schema& s = data.schema();
  const int article = s.RequireClass("Article");
  const int venue = s.RequireClass("Venue");
  const int person = s.RequireClass("Person");
  EXPECT_EQ(data.reference(refs[0]).class_id(), article);
  EXPECT_EQ(data.reference(refs[1]).class_id(), venue);
  EXPECT_EQ(data.reference(refs[2]).class_id(), person);

  const Reference& art = data.reference(refs[0]);
  EXPECT_EQ(
      art.associations(s.RequireAttribute(article, "authoredBy")).size(),
      3u);
  EXPECT_EQ(
      art.associations(s.RequireAttribute(article, "publishedIn"))[0],
      refs[1]);
  const Reference& ven = data.reference(refs[1]);
  EXPECT_EQ(ven.FirstValue(s.RequireAttribute(venue, "name")), "ACM SIGMOD");
  EXPECT_EQ(ven.FirstValue(s.RequireAttribute(venue, "location")),
            "Austin, Texas");
  // Co-author links among the three authors.
  const int coauthor = s.RequireAttribute(person, "coAuthor");
  EXPECT_EQ(data.reference(refs[2]).associations(coauthor).size(), 2u);
}

TEST(ExtractorTest, TitlelessEntriesAreDropped) {
  Extractor extractor;
  size_t pos = 0;
  const auto entry =
      ParseNextBibtexEntry("@misc{k, year = 1999}", &pos);
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(extractor.AddBibtexEntry(entry.value()).empty());
}

// ---- Round-trip: generate -> render -> parse -> extract --------------------------------

class RoundTripTest : public ::testing::Test {
 protected:
  RoundTripTest() {
    datagen::PimConfig config = datagen::PimConfigA();
    config = datagen::ScaleConfig(config, 0.03);
    config.seed = 777;
    original_ = datagen::GeneratePim(config);
    corpus_ = datagen::RenderPimCorpus(original_);
    extracted_ = datagen::ExtractPimCorpus(corpus_);
  }

  Dataset original_{BuildPimSchema()};
  datagen::RenderedCorpus corpus_;
  Dataset extracted_{BuildPimSchema()};
};

TEST_F(RoundTripTest, PreservesReferenceCounts) {
  // Dedup inside the extractor may collapse a handful of identical
  // mailboxes; everything else must survive exactly.
  EXPECT_LE(extracted_.num_references(), original_.num_references());
  EXPECT_GE(extracted_.num_references(),
            original_.num_references() * 99 / 100);
  for (const char* cls : {"Article", "Venue"}) {
    const int id = original_.schema().RequireClass(cls);
    EXPECT_EQ(extracted_.ReferencesOfClass(id).size(),
              original_.ReferencesOfClass(id).size())
        << cls;
  }
}

TEST_F(RoundTripTest, PreservesGoldLabels) {
  int labeled = 0;
  for (RefId id = 0; id < extracted_.num_references(); ++id) {
    if (extracted_.gold_entity(id) >= 0) ++labeled;
  }
  EXPECT_GE(labeled, extracted_.num_references() * 99 / 100);
  // Entity counts per class match the original.
  for (const char* cls : {"Person", "Article", "Venue"}) {
    const int orig_class = original_.schema().RequireClass(cls);
    const int extr_class = extracted_.schema().RequireClass(cls);
    EXPECT_NEAR(extracted_.NumEntitiesOfClass(extr_class),
                original_.NumEntitiesOfClass(orig_class), 2)
        << cls;
  }
}

TEST_F(RoundTripTest, ReconciliationQualityMatchesDirectPath) {
  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const int person_o = original_.schema().RequireClass("Person");
  const int person_e = extracted_.schema().RequireClass("Person");
  const PairMetrics direct = EvaluateClass(
      original_, reconciler.Run(original_).cluster, person_o);
  const PairMetrics via_text = EvaluateClass(
      extracted_, reconciler.Run(extracted_).cluster, person_e);
  EXPECT_NEAR(via_text.f1, direct.f1, 0.03);
}

TEST_F(RoundTripTest, CorpusLooksLikeRealText) {
  EXPECT_NE(corpus_.mbox.find("From: "), std::string::npos);
  EXPECT_NE(corpus_.mbox.find("X-Gold: "), std::string::npos);
  EXPECT_NE(corpus_.bibtex.find("@inproceedings{"), std::string::npos);
  EXPECT_NE(corpus_.bibtex.find("author = {"), std::string::npos);
}

}  // namespace
}  // namespace recon::extract
