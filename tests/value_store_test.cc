// The interned value store + similarity memo (ReconcilerOptions::value_store,
// DESIGN.md §11) must be undetectable in the output: feature-based scoring
// and raw-string scoring produce byte-identical partitions, merged pairs,
// and stats on PIM and Cora data, across thread counts {1, 2, 4, 8},
// constraints on/off, enrichment on/off, and memo byte bounds down to
// bypass. Runs under ThreadSanitizer (ctest label `tsan`) because the memo
// is shared across staging lanes, and under AddressSanitizer (`asan`)
// because eviction and bypass exercise the degradation paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "sim/comparators.h"
#include "sim/value_store.h"

namespace recon {
namespace {

Dataset SmallPim() {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.10);
  return datagen::GeneratePim(config);
}

Dataset SmallCora() {
  datagen::CoraConfig config;
  config.num_papers = 30;
  config.num_citations = 300;
  config.num_authors = 60;
  config.num_venue_series = 12;
  return datagen::GenerateCora(config);
}

/// Distinct raw values of one atomic attribute, in first-seen order,
/// capped so the all-pairs equivalence checks stay fast.
std::vector<std::string> DistinctValues(const Dataset& dataset, int class_id,
                                        int attr, size_t cap = 48) {
  std::vector<std::string> out;
  if (class_id < 0 || attr < 0) return out;
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    const Reference& r = dataset.reference(id);
    if (r.class_id() != class_id) continue;
    for (const std::string& raw : r.atomic_values(attr)) {
      if (std::find(out.begin(), out.end(), raw) == out.end()) {
        out.push_back(raw);
        if (out.size() >= cap) return out;
      }
    }
  }
  return out;
}

// ---- Interning and analysis ----------------------------------------------

TEST(ValueStoreTest, SyncAnalyzesEachValueOnceAndCoversThePool) {
  ValuePool pool;
  const ValueDomain names{0, 0};
  const ValueDomain emails{0, 1};
  ValueKindSchema schema;
  schema.kinds.emplace_back(names, FeatureKind::kPersonName);
  schema.kinds.emplace_back(emails, FeatureKind::kEmail);

  const ValueId a = pool.Intern(names, "Alice Smith");
  const ValueId a2 = pool.Intern(names, "Alice Smith");
  const ValueId b = pool.Intern(names, "Bob Jones");
  const ValueId e = pool.Intern(emails, "alice@example.com");
  EXPECT_EQ(a, a2);  // Interning is idempotent per (domain, string).
  EXPECT_NE(a, b);

  ValueStore store(schema);
  store.Sync(pool);
  EXPECT_EQ(store.size(), pool.size());
  EXPECT_EQ(store.num_analyses(), static_cast<int64_t>(pool.size()));
  EXPECT_TRUE(store.Covers(a));
  EXPECT_TRUE(store.Covers(e));
  EXPECT_FALSE(store.Covers(kInvalidValue));

  const ValueFeatures& fa = store.features(a);
  EXPECT_EQ(fa.kind, FeatureKind::kPersonName);
  EXPECT_EQ(fa.lower, "alice smith");
  EXPECT_EQ(fa.name.last, "smith");
  const ValueFeatures& fe = store.features(e);
  EXPECT_EQ(fe.kind, FeatureKind::kEmail);
  EXPECT_EQ(fe.email.account, "alice");
  EXPECT_EQ(fe.email.server, "example.com");
  EXPECT_GT(store.approximate_bytes(), 0);

  // A second Sync over an extended pool analyzes only the new values.
  const ValueId c = pool.Intern(names, "Carol Mint");
  store.Sync(pool);
  EXPECT_EQ(store.num_analyses(), static_cast<int64_t>(pool.size()));
  EXPECT_EQ(store.features(c).name.last, "mint");
  // Previously analyzed features are untouched by the extension.
  EXPECT_EQ(store.features(a).lower, "alice smith");
}

TEST(ValueStoreTest, UnregisteredDomainsGetGenericFeatures) {
  ValueKindSchema schema;
  EXPECT_EQ(schema.KindOf(ValueDomain{3, 7}), FeatureKind::kGeneric);
  const ValueFeatures f = AnalyzeValue("Some Raw TEXT", FeatureKind::kGeneric);
  EXPECT_EQ(f.lower, "some raw text");
  EXPECT_GT(f.ngrams.size(), 0);
  EXPECT_FALSE(f.soundex.empty());
}

// ---- Feature / raw comparator equivalence --------------------------------

/// Every comparator must score a pair of precomputed features exactly as it
/// scores the raw strings — the bit-level contract behind the byte-identical
/// output guarantee.
void ExpectComparatorEquivalence(const Dataset& dataset,
                                 const std::string& label) {
  SCOPED_TRACE(label);
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());

  auto check = [&](int class_id, int attr, FeatureKind kind, auto raw_fn,
                   auto feature_fn) {
    const std::vector<std::string> values =
        DistinctValues(dataset, class_id, attr);
    std::vector<ValueFeatures> features;
    features.reserve(values.size());
    for (const std::string& v : values) {
      features.push_back(AnalyzeValue(v, kind));
    }
    for (size_t i = 0; i < values.size(); ++i) {
      for (size_t j = i; j < values.size(); ++j) {
        const double raw = raw_fn(values[i], values[j]);
        const double feat = feature_fn(features[i], features[j]);
        ASSERT_EQ(raw, feat)
            << "\"" << values[i] << "\" vs \"" << values[j] << "\"";
      }
    }
  };

  check(binding.person, binding.person_name, FeatureKind::kPersonName,
        [](const std::string& a, const std::string& b) {
          return PersonNameFieldSimilarity(a, b);
        },
        [](const ValueFeatures& a, const ValueFeatures& b) {
          return PersonNameFieldSimilarity(a, b);
        });
  check(binding.person, binding.person_email, FeatureKind::kEmail,
        [](const std::string& a, const std::string& b) {
          return EmailFieldSimilarity(a, b);
        },
        [](const ValueFeatures& a, const ValueFeatures& b) {
          return EmailFieldSimilarity(a, b);
        });
  check(binding.article, binding.article_title, FeatureKind::kTitle,
        [](const std::string& a, const std::string& b) {
          return TitleFieldSimilarity(a, b);
        },
        [](const ValueFeatures& a, const ValueFeatures& b) {
          return TitleFieldSimilarity(a, b);
        });
  check(binding.article, binding.article_year, FeatureKind::kYear,
        [](const std::string& a, const std::string& b) {
          return YearFieldSimilarity(a, b);
        },
        [](const ValueFeatures& a, const ValueFeatures& b) {
          return YearFieldSimilarity(a, b);
        });
  check(binding.article, binding.article_pages, FeatureKind::kPages,
        [](const std::string& a, const std::string& b) {
          return PagesFieldSimilarity(a, b);
        },
        [](const ValueFeatures& a, const ValueFeatures& b) {
          return PagesFieldSimilarity(a, b);
        });
  check(binding.venue, binding.venue_name, FeatureKind::kVenueName,
        [](const std::string& a, const std::string& b) {
          return VenueNameFieldSimilarity(a, b);
        },
        [](const ValueFeatures& a, const ValueFeatures& b) {
          return VenueNameFieldSimilarity(a, b);
        });
  check(binding.venue, binding.venue_location, FeatureKind::kLocation,
        [](const std::string& a, const std::string& b) {
          return LocationFieldSimilarity(a, b);
        },
        [](const ValueFeatures& a, const ValueFeatures& b) {
          return LocationFieldSimilarity(a, b);
        });

  // Cross-attribute: person name against email, both argument orders of the
  // kind-dispatching feature form.
  const std::vector<std::string> names =
      DistinctValues(dataset, binding.person, binding.person_name, 24);
  const std::vector<std::string> emails =
      DistinctValues(dataset, binding.person, binding.person_email, 24);
  for (const std::string& n : names) {
    const ValueFeatures fn = AnalyzeValue(n, FeatureKind::kPersonName);
    for (const std::string& e : emails) {
      const ValueFeatures fe = AnalyzeValue(e, FeatureKind::kEmail);
      const double raw = NameEmailFieldSimilarity(n, e);
      ASSERT_EQ(raw, NameEmailFieldSimilarity(fn, fe)) << n << " vs " << e;
      ASSERT_EQ(raw, FeaturePairSimilarity(kEvPersonNameEmail, fn, fe));
      ASSERT_EQ(raw, FeaturePairSimilarity(kEvPersonNameEmail, fe, fn));
    }
  }
}

TEST(ValueStoreTest, ComparatorsMatchRawOnPim) {
  ExpectComparatorEquivalence(SmallPim(), "PIM-A");
}

TEST(ValueStoreTest, ComparatorsMatchRawOnCora) {
  ExpectComparatorEquivalence(SmallCora(), "Cora");
}

TEST(ValueStoreTest, NgramSetJaccardMatchesStringNgramSimilarity) {
  const std::vector<std::string> samples = {
      "",     "a",       "ab",        "conference", "Conference",
      "VLDB", "database systems", "data base systems", "sigmod record"};
  for (const std::string& a : samples) {
    for (const std::string& b : samples) {
      const strsim::NgramSet sa = strsim::BuildNgramSet(a, 3);
      const strsim::NgramSet sb = strsim::BuildNgramSet(b, 3);
      EXPECT_EQ(strsim::NgramSimilarity(a, b, 3),
                strsim::NgramSetJaccard(sa, sb))
          << "\"" << a << "\" vs \"" << b << "\"";
    }
  }
}

// ---- End-to-end byte identity --------------------------------------------

/// Runs `base` with the value store off and on and asserts every observable
/// output matches (the store/memo counters are exempt — they exist precisely
/// to differ).
void ExpectStoreInvisible(const Dataset& dataset, ReconcilerOptions base,
                          const std::string& label) {
  SCOPED_TRACE(label);
  base.value_store = false;
  const ReconcileResult off = Reconciler(base).Run(dataset);
  base.value_store = true;
  const ReconcileResult on = Reconciler(base).Run(dataset);

  EXPECT_EQ(off.cluster, on.cluster);
  EXPECT_EQ(off.merged_pairs, on.merged_pairs);
  EXPECT_EQ(off.stats.num_candidates, on.stats.num_candidates);
  EXPECT_EQ(off.stats.num_nodes, on.stats.num_nodes);
  EXPECT_EQ(off.stats.num_live_nodes, on.stats.num_live_nodes);
  EXPECT_EQ(off.stats.num_edges, on.stats.num_edges);
  EXPECT_EQ(off.stats.num_recomputations, on.stats.num_recomputations);
  EXPECT_EQ(off.stats.num_merges, on.stats.num_merges);
  EXPECT_EQ(off.stats.num_folds, on.stats.num_folds);
  // Both paths walk the same cross products.
  EXPECT_EQ(off.stats.num_pair_comparisons, on.stats.num_pair_comparisons);

  for (int c = 0; c < dataset.schema().num_classes(); ++c) {
    const PairMetrics m_off = EvaluateClass(dataset, off.cluster, c);
    const PairMetrics m_on = EvaluateClass(dataset, on.cluster, c);
    EXPECT_EQ(m_off.precision, m_on.precision);
    EXPECT_EQ(m_off.recall, m_on.recall);
    EXPECT_EQ(m_off.f1, m_on.f1);
    EXPECT_EQ(m_off.num_partitions, m_on.num_partitions);
  }
}

TEST(ValueStoreTest, PimSweep) {
  const Dataset dataset = SmallPim();
  for (const int threads : {1, 2, 4, 8}) {
    for (const bool constraints : {true, false}) {
      for (const bool enrichment : {true, false}) {
        ReconcilerOptions options = ReconcilerOptions::DepGraph();
        options.num_threads = threads;
        options.constraints = constraints;
        options.enrichment = enrichment;
        ExpectStoreInvisible(
            dataset, options,
            "PIM-A threads=" + std::to_string(threads) +
                " constraints=" + std::to_string(constraints) +
                " enrichment=" + std::to_string(enrichment));
      }
    }
  }
}

TEST(ValueStoreTest, CoraSweep) {
  const Dataset dataset = SmallCora();
  for (const int threads : {1, 2, 4, 8}) {
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.num_threads = threads;
    ExpectStoreInvisible(dataset, options,
                         "Cora threads=" + std::to_string(threads));
  }
}

TEST(ValueStoreTest, EvidenceLevelsMatch) {
  const Dataset dataset = SmallPim();
  for (const EvidenceLevel level :
       {EvidenceLevel::kAttrWise, EvidenceLevel::kNameEmail,
        EvidenceLevel::kArticle, EvidenceLevel::kContact}) {
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.evidence_level = level;
    ExpectStoreInvisible(dataset, options,
                         "level=" + std::to_string(static_cast<int>(level)));
  }
}

TEST(ValueStoreTest, CanopiesMatch) {
  // Canopy key extraction also reads the store; the canopies (and thus the
  // whole run) must be identical either way.
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.use_canopies = true;
  ExpectStoreInvisible(dataset, options, "canopies");
}

// ---- Memo determinism and degradation ------------------------------------

TEST(ValueStoreTest, MemoCountersDeterministicAcrossThreadCounts) {
  const Dataset dataset = SmallPim();
  ReconcileResult first;
  for (const int threads : {1, 2, 4, 8}) {
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.num_threads = threads;
    const ReconcileResult result = Reconciler(options).Run(dataset);
    // Compute-under-lock: misses = distinct (evidence, v1, v2) keys, a
    // property of the candidate set, not of the schedule.
    if (threads == 1) {
      first = result;
      EXPECT_GT(first.stats.num_sim_memo_hits, 0);
      EXPECT_GT(first.stats.num_sim_memo_misses, 0);
      EXPECT_EQ(first.stats.num_sim_memo_evictions, 0);
      EXPECT_EQ(first.stats.num_sim_memo_bypasses, 0);
      EXPECT_GT(first.stats.sim_memo_bytes, 0);
      EXPECT_GT(first.stats.value_store_bytes, 0);
      continue;
    }
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(result.stats.num_pair_comparisons,
              first.stats.num_pair_comparisons);
    EXPECT_EQ(result.stats.num_value_analyses,
              first.stats.num_value_analyses);
    EXPECT_EQ(result.stats.num_sim_memo_hits, first.stats.num_sim_memo_hits);
    EXPECT_EQ(result.stats.num_sim_memo_misses,
              first.stats.num_sim_memo_misses);
    EXPECT_EQ(result.stats.sim_memo_bytes, first.stats.sim_memo_bytes);
  }
}

TEST(ValueStoreTest, AnalysesScaleWithDistinctValuesNotPairs) {
  // The point of the store: each distinct value is analyzed once, while
  // pair comparisons scale with the candidate cross products.
  const Dataset dataset = SmallPim();
  const ReconcilerOptions options = ReconcilerOptions::DepGraph();
  const ReconcileResult result = Reconciler(options).Run(dataset);
  EXPECT_GT(result.stats.num_pair_comparisons,
            5 * result.stats.num_value_analyses);
}

TEST(ValueStoreTest, TinyMemoBoundDegradesWithoutChangingOutput) {
  const Dataset dataset = SmallPim();
  for (const int threads : {1, 4}) {
    // Small enough to force shard evictions, large enough to stay active.
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.num_threads = threads;
    options.sim_memo_max_bytes = 64 * SimMemo::kEntryBytes * 10;
    ExpectStoreInvisible(dataset, options,
                         "evicting threads=" + std::to_string(threads));
    options.value_store = true;
    const ReconcileResult evicting = Reconciler(options).Run(dataset);
    EXPECT_GT(evicting.stats.num_sim_memo_evictions, 0);
    EXPECT_LE(evicting.stats.sim_memo_bytes, options.sim_memo_max_bytes);

    // Too small for even a handful of entries per shard: bypass.
    options.sim_memo_max_bytes = 64;
    ExpectStoreInvisible(dataset, options,
                         "bypass threads=" + std::to_string(threads));
    options.value_store = true;
    const ReconcileResult bypassing = Reconciler(options).Run(dataset);
    EXPECT_GT(bypassing.stats.num_sim_memo_bypasses, 0);
    EXPECT_EQ(bypassing.stats.num_sim_memo_hits, 0);
    EXPECT_EQ(bypassing.stats.sim_memo_bytes, 0);
  }
}

TEST(ValueStoreTest, SoftMemoryBudgetShrinksMemoNotOutput) {
  // A soft memory budget below the default memo bound caps the memo; the
  // budget estimate itself stays graph-only, so stops (and output) are
  // identical with the store on or off.
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.budget.soft_max_memory_bytes = 256 << 10;
  ExpectStoreInvisible(dataset, options, "soft-budget");
}

TEST(ValueStoreTest, IncrementalBatchesMatch) {
  // Incremental reconciliation interns and syncs per flush; batches must be
  // byte-identical with the store on and off.
  const Dataset dataset = SmallPim();
  std::vector<std::vector<int>> clusters;
  for (const bool store : {false, true}) {
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.value_store = store;
    IncrementalReconciler inc(Dataset(dataset.schema()), options);
    for (RefId id = 0; id < dataset.num_references(); ++id) {
      inc.AddReference(dataset.reference(id), /*gold_entity=*/-1,
                       dataset.provenance(id));
      if (id % 97 == 0) inc.Flush();
    }
    const ReconcileResult result = inc.result();
    if (store) {
      EXPECT_GT(result.stats.num_value_analyses, 0);
      EXPECT_GT(result.stats.num_sim_memo_misses, 0);
    }
    clusters.push_back(result.cluster);
  }
  EXPECT_EQ(clusters[0], clusters[1]);
}

}  // namespace
}  // namespace recon
