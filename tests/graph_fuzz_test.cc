// Randomized consistency tests of the dependency graph's enrichment
// folding against a naive reference model: after arbitrary merge
// sequences, the graph's pair index, per-reference node lists, and edge
// symmetry must all remain coherent.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/dep_graph.h"
#include "sim/evidence.h"
#include "util/random.h"
#include "util/union_find.h"

namespace recon {
namespace {

/// Checks structural invariants of the graph.
void CheckInvariants(const DependencyGraph& graph, int num_refs) {
  std::map<std::pair<int, int>, int> live_pairs;
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (node.dead) {
      // Dead nodes must be fully detached.
      EXPECT_TRUE(graph.in_edges(id).empty()) << id;
      EXPECT_TRUE(graph.out_edges(id).empty()) << id;
      continue;
    }
    EXPECT_LE(node.a, node.b);
    if (node.IsRefPair()) {
      // At most one live node per pair; index agrees.
      auto [it, inserted] =
          live_pairs.try_emplace({node.a, node.b}, id);
      EXPECT_TRUE(inserted) << "duplicate pair (" << node.a << ","
                            << node.b << ")";
      EXPECT_EQ(graph.FindRefPair(node.a, node.b), id);
    }
    // Edge symmetry: every out edge has a matching in record and
    // vice versa; no edges touch dead nodes; no self loops.
    for (const Edge& e : graph.out_edges(id)) {
      EXPECT_NE(e.node, id);
      EXPECT_FALSE(graph.node(e.node).dead);
      bool found = false;
      for (const Edge& back : graph.in_edges(e.node)) {
        if (back.node == id && back.kind == e.kind &&
            back.evidence == e.evidence) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << "missing in-record for " << id << "->" << e.node;
    }
    for (const Edge& e : graph.in_edges(id)) {
      EXPECT_FALSE(graph.node(e.node).dead);
    }
  }
  // NodesOfRef lists only live nodes containing the reference.
  for (RefId r = 0; r < num_refs; ++r) {
    for (const NodeId id : graph.NodesOfRef(r)) {
      const Node& node = graph.node(id);
      if (node.dead) continue;  // Lists may lag; dead entries are skipped.
      EXPECT_TRUE(node.a == r || node.b == r);
    }
  }
}

TEST(GraphFuzzTest, RandomMergeSequencesKeepInvariants) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Random rng(seed);
    const int num_refs = 24;
    DependencyGraph graph(num_refs);

    // Random ref-pair nodes.
    const int num_pairs = 60;
    for (int i = 0; i < num_pairs; ++i) {
      const RefId a = static_cast<RefId>(rng.NextBounded(num_refs));
      const RefId b = static_cast<RefId>(rng.NextBounded(num_refs));
      if (a == b) continue;
      graph.AddRefPairNode(0, a, b);
    }
    // Random value nodes wired to random ref pairs.
    std::vector<NodeId> ref_nodes;
    for (NodeId id = 0; id < graph.num_nodes(); ++id) {
      if (graph.node(id).IsRefPair()) ref_nodes.push_back(id);
    }
    for (int v = 0; v < 30 && !ref_nodes.empty(); ++v) {
      const NodeId value =
          graph.AddValuePairNode(1000 + 2 * v, 1001 + 2 * v, 0.5,
                                 NodeState::kInactive);
      const NodeId target = ref_nodes[rng.NextBounded(ref_nodes.size())];
      if (graph.node(target).dead) continue;
      graph.AddEdge(value, target, DependencyKind::kRealValued,
                    kEvPersonName);
      if (rng.NextBool(0.3)) {
        graph.AddEdge(target, value, DependencyKind::kStrongBoolean,
                      kEvPersonName);
      }
    }
    // Random weak edges between ref pairs.
    for (int e = 0; e < 40; ++e) {
      const NodeId x = ref_nodes[rng.NextBounded(ref_nodes.size())];
      const NodeId y = ref_nodes[rng.NextBounded(ref_nodes.size())];
      if (x == y || graph.node(x).dead || graph.node(y).dead) continue;
      graph.AddEdge(x, y, DependencyKind::kWeakBoolean, kEvPersonContact);
    }
    CheckInvariants(graph, num_refs);

    // Random merge sequence through a union-find, mirroring the solver.
    UnionFind refs(num_refs);
    for (int step = 0; step < 15; ++step) {
      const RefId a = refs.Find(static_cast<RefId>(rng.NextBounded(num_refs)));
      const RefId b = refs.Find(static_cast<RefId>(rng.NextBounded(num_refs)));
      if (a == b) continue;
      // Mark the pair node merged if it exists (as the solver would).
      const NodeId pair = graph.FindRefPair(a, b);
      if (pair != kInvalidNode) {
        graph.mutable_node(pair).state = NodeState::kMerged;
      }
      const int keep = refs.Union(a, b);
      const RefId gone = (keep == a) ? b : a;
      graph.MergeReferences(keep, gone);
      CheckInvariants(graph, num_refs);
    }
  }
}

TEST(GraphFuzzTest, FoldedEvidenceNeverDisappears) {
  // Every value node wired to some pair of {survivor set} x {gone set}
  // must end up wired to the surviving pair.
  Random rng(99);
  DependencyGraph graph(6);
  // Pairs (0,2), (1,2): value evidence on both.
  const NodeId p02 = graph.AddRefPairNode(0, 0, 2);
  const NodeId p12 = graph.AddRefPairNode(0, 1, 2);
  const NodeId p01 = graph.AddRefPairNode(0, 0, 1);
  const NodeId v1 = graph.AddValuePairNode(100, 101, 0.7, NodeState::kInactive);
  const NodeId v2 = graph.AddValuePairNode(102, 103, 0.9, NodeState::kInactive);
  graph.AddEdge(v1, p02, DependencyKind::kRealValued, kEvPersonName);
  graph.AddEdge(v2, p12, DependencyKind::kRealValued, kEvPersonEmail);

  graph.mutable_node(p01).state = NodeState::kMerged;
  graph.MergeReferences(0, 1);

  // (1,2) folded into (0,2): both value edges now feed (0,2).
  EXPECT_TRUE(graph.node(p12).dead);
  std::set<NodeId> sources;
  for (const Edge& e : graph.in_edges(p02)) sources.insert(e.node);
  EXPECT_TRUE(sources.count(v1));
  EXPECT_TRUE(sources.count(v2));
  (void)rng;
}

}  // namespace
}  // namespace recon
