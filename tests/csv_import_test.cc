#include <gtest/gtest.h>

#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "extract/csv_import.h"
#include "model/dataset.h"

namespace recon::extract {
namespace {

// ---- Raw CSV parsing ----------------------------------------------------------

TEST(CsvParseTest, SimpleRows) {
  const auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvParseTest, QuotedFieldsWithCommasAndQuotes) {
  const auto rows = ParseCsv(R"("Wong, E.",ew@b.edu,"say ""hi""")" "\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "Wong, E.");
  EXPECT_EQ(rows[0][2], "say \"hi\"");
}

TEST(CsvParseTest, QuotedNewlines) {
  const auto rows = ParseCsv("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrlfAndEmptyFields) {
  const auto rows = ParseCsv("a,,c\r\n,,\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "");
  EXPECT_EQ(rows[1].size(), 3u);
}

TEST(CsvParseTest, AlternateDelimiter) {
  const auto rows = ParseCsv("a|b|c\n", '|');
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 3u);
}

TEST(CsvParseTest, NoTrailingNewline) {
  const auto rows = ParseCsv("a,b");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

// ---- Import -------------------------------------------------------------------

class CsvImportTest : public ::testing::Test {
 protected:
  CsvImportTest() : data_(BuildPimSchema()) {
    person_ = data_.schema().RequireClass("Person");
    name_ = data_.schema().RequireAttribute(person_, "name");
    email_ = data_.schema().RequireAttribute(person_, "email");
  }

  Dataset data_;
  int person_, name_, email_;
};

TEST_F(CsvImportTest, ImportsRowsWithGold) {
  CsvImportSpec spec;
  spec.class_id = person_;
  spec.column_to_attribute = {name_, email_, -1};
  spec.gold_column = 2;
  const auto result = ImportCsv(
      "name,email,id\n"
      "\"Wong, E.\",ew@b.edu,7\n"
      "Eugene Wong,eugene@berkeley.edu;ew@b.edu,7\n",
      spec, &data_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value(), 2);
  EXPECT_EQ(data_.gold_entity(0), 7);
  EXPECT_EQ(data_.reference(0).FirstValue(name_), "Wong, E.");
  // Multi-valued cell split on ';'.
  EXPECT_EQ(data_.reference(1).atomic_values(email_).size(), 2u);
}

TEST_F(CsvImportTest, NoHeaderAndIgnoredColumns) {
  CsvImportSpec spec;
  spec.class_id = person_;
  spec.has_header = false;
  spec.column_to_attribute = {-1, name_};
  const auto result = ImportCsv("junk,Eugene Wong\n", spec, &data_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 1);
  EXPECT_EQ(data_.reference(0).FirstValue(name_), "Eugene Wong");
  EXPECT_EQ(data_.gold_entity(0), -1);
}

TEST_F(CsvImportTest, RejectsAssociationColumns) {
  CsvImportSpec spec;
  spec.class_id = person_;
  spec.column_to_attribute = {
      data_.schema().RequireAttribute(person_, "coAuthor")};
  EXPECT_FALSE(ImportCsv("x\n", spec, &data_).ok());
}

TEST_F(CsvImportTest, RejectsBadGold) {
  CsvImportSpec spec;
  spec.class_id = person_;
  spec.has_header = false;
  spec.column_to_attribute = {name_};
  spec.gold_column = 1;
  const auto result = ImportCsv("Eve,notanumber\n", spec, &data_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("row 1"), std::string::npos);
}

TEST_F(CsvImportTest, ImportedDataReconciles) {
  // A miniature dedupe job straight from CSV.
  CsvImportSpec spec;
  spec.class_id = person_;
  spec.column_to_attribute = {name_, email_};
  spec.gold_column = 2;
  const auto result = ImportCsv(
      "name,email,id\n"
      "Michael Stonebraker,stonebraker@csail.mit.edu,1\n"
      "mike,stonebraker@csail.mit.edu,1\n"
      "\"Stonebraker, M.\",,1\n"
      "Eugene Wong,eugene@berkeley.edu,2\n"
      "\"Wong, E.\",eugene@berkeley.edu,2\n",
      spec, &data_);
  ASSERT_TRUE(result.ok());

  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult r = reconciler.Run(data_);
  EXPECT_EQ(r.cluster[0], r.cluster[1]);
  EXPECT_EQ(r.cluster[3], r.cluster[4]);
  EXPECT_NE(r.cluster[0], r.cluster[3]);
}

}  // namespace
}  // namespace recon::extract
