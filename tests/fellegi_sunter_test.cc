#include <gtest/gtest.h>

#include "baseline/fellegi_sunter.h"
#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"

namespace recon {
namespace {

class FellegiSunterTest : public ::testing::Test {
 protected:
  FellegiSunterTest() : data_(BuildPimSchema()) {
    person_ = data_.schema().RequireClass("Person");
    name_ = data_.schema().RequireAttribute(person_, "name");
    email_ = data_.schema().RequireAttribute(person_, "email");
  }

  RefId Person(int gold, const std::string& name,
               const std::string& email = "") {
    const RefId id = data_.NewReference(person_, gold);
    if (!name.empty()) data_.mutable_reference(id).AddAtomicValue(name_, name);
    if (!email.empty()) {
      data_.mutable_reference(id).AddAtomicValue(email_, email);
    }
    return id;
  }

  Dataset data_;
  int person_, name_, email_;
};

TEST_F(FellegiSunterTest, LinksCleanDuplicates) {
  // Clear structure: duplicated persons agree on both fields; distinct
  // pairs disagree. EM must separate the two populations. First names are
  // genuinely distinct (not within typo distance of each other).
  const char* firsts[] = {"Amelia",  "Bernard", "Carlotta", "Demetrius",
                          "Evelyn",  "Fernando", "Gwendolyn", "Humberto",
                          "Isadora", "Jonathan", "Katarina", "Leopold"};
  for (int e = 0; e < 12; ++e) {
    const std::string name = std::string(firsts[e]) + " Sample";
    const std::string email =
        std::string(firsts[e]) + ".sample@x.edu";
    for (int copy = 0; copy < 3; ++copy) Person(e, name, email);
  }
  const FellegiSunter linker;
  const ReconcileResult result = linker.Run(data_);
  const PairMetrics m = EvaluateClass(data_, result.cluster, person_);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST_F(FellegiSunterTest, EmLearnsAgreementWeights) {
  const char* firsts[] = {"Amelia",  "Bernard", "Carlotta", "Demetrius",
                          "Evelyn",  "Fernando", "Gwendolyn", "Humberto",
                          "Isadora", "Jonathan"};
  for (int e = 0; e < 10; ++e) {
    const std::string name = std::string(firsts[e]) + " Unique";
    for (int copy = 0; copy < 3; ++copy) {
      Person(e, name, std::string(firsts[e]) + "@x.edu");
    }
  }
  const FellegiSunter linker;
  const FellegiSunterModel model = linker.FitClass(data_, person_);
  ASSERT_EQ(model.m_probabilities.size(), 2u);  // name, email.
  EXPECT_GT(model.iterations, 0);
  // Among matches, "agree" must dominate; among non-matches, it must not.
  EXPECT_GT(model.m_probabilities[0][2], 0.5);
  EXPECT_LT(model.u_probabilities[0][2], model.m_probabilities[0][2]);
  EXPECT_GT(model.match_prior, 0.0);
  EXPECT_LE(model.match_prior, 0.5);
}

TEST_F(FellegiSunterTest, DeterministicAcrossRuns) {
  for (int e = 0; e < 8; ++e) {
    const char* firsts[] = {"Amelia", "Bernard", "Carlotta", "Demetrius",
                            "Evelyn", "Fernando", "Gwendolyn", "Humberto"};
    Person(e, std::string(firsts[e]) + " Body",
           std::string(firsts[e]) + "b@x.edu");
    Person(e, std::string(firsts[e]) + " Body");
  }
  const FellegiSunter linker;
  EXPECT_EQ(linker.Run(data_).cluster, linker.Run(data_).cluster);
}

TEST_F(FellegiSunterTest, EmptyAndDegenerateInputs) {
  const FellegiSunter linker;
  EXPECT_TRUE(linker.Run(data_).cluster.empty());
  Person(0, "Lonely Soul");
  const ReconcileResult result = linker.Run(data_);
  EXPECT_EQ(result.cluster[0], 0);
}

TEST(FellegiSunterComparisonTest, LandsBetweenNothingAndDepGraph) {
  // On generated personal data the unsupervised linker must beat the
  // trivial all-singletons answer and is expected to trail DepGraph.
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.03);
  const Dataset data = datagen::GeneratePim(config);
  const int person = data.schema().RequireClass("Person");

  const FellegiSunter fs;
  const PairMetrics m_fs = EvaluateClass(data, fs.Run(data).cluster, person);
  const Reconciler dep(ReconcilerOptions::DepGraph());
  const PairMetrics m_dep =
      EvaluateClass(data, dep.Run(data).cluster, person);

  EXPECT_GT(m_fs.recall, 0.3);
  EXPECT_GT(m_fs.precision, 0.8);
  EXPECT_GE(m_dep.f1, m_fs.f1);
}

}  // namespace
}  // namespace recon
