// Cora-specific tests: the citation-benchmark phenomena behind Table 7.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "eval/metrics.h"

namespace recon {
namespace {

datagen::CoraConfig SmallCora(uint64_t seed) {
  datagen::CoraConfig config;
  config.num_papers = 40;
  config.num_citations = 320;
  config.num_authors = 70;
  config.num_venue_series = 20;
  config.seed = seed;
  return config;
}

TEST(CoraTest, VenueGoldIsSeriesLevel) {
  // All year-instances of one series carry the same gold label.
  datagen::Universe universe;
  const Dataset data = datagen::GenerateCora(SmallCora(11), &universe);
  const int venue = data.schema().RequireClass("Venue");
  const int name_attr = data.schema().RequireAttribute(venue, "name");
  // Gather gold labels per acronym-resolved series.
  std::map<std::string, std::set<int>> golds_per_acronym;
  for (const RefId id : data.ReferencesOfClass(venue)) {
    const std::string& name = data.reference(id).FirstValue(name_attr);
    for (const auto& spec : universe.venues) {
      if (name == spec.acronym) {
        golds_per_acronym[spec.acronym].insert(data.gold_entity(id));
      }
    }
  }
  ASSERT_FALSE(golds_per_acronym.empty());
  for (const auto& [acronym, golds] : golds_per_acronym) {
    EXPECT_EQ(golds.size(), 1u) << acronym;
  }
}

TEST(CoraTest, WrongVenueMentionsDragDownDepGraphVenuePrecision) {
  datagen::CoraConfig clean = SmallCora(12);
  clean.p_wrong_venue = 0.0;
  datagen::CoraConfig noisy = SmallCora(12);
  noisy.p_wrong_venue = 0.10;

  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  auto venue_precision = [&](const datagen::CoraConfig& config) {
    const Dataset data = datagen::GenerateCora(config);
    const int venue = data.schema().RequireClass("Venue");
    return EvaluateClass(data, reconciler.Run(data).cluster, venue)
        .precision;
  };
  EXPECT_GT(venue_precision(clean), venue_precision(noisy));
}

TEST(CoraTest, DepGraphBeatsIndepDecOnEveryClass) {
  const Dataset data = datagen::GenerateCora(SmallCora(13));
  const IndepDec indep;
  const Reconciler dep(ReconcilerOptions::DepGraph());
  const auto ci = indep.Run(data).cluster;
  const auto cd = dep.Run(data).cluster;
  for (const char* cls : {"Person", "Article", "Venue"}) {
    const int id = data.schema().RequireClass(cls);
    EXPECT_GE(EvaluateClass(data, cd, id).f1,
              EvaluateClass(data, ci, id).f1)
        << cls;
  }
}

TEST(CoraTest, ArticleRecallGainComesFromAuthorAndVenueEvidence) {
  // With association evidence off (attr-wise) article recall is lower
  // than with it on, on the same data.
  const Dataset data = datagen::GenerateCora(SmallCora(14));
  const int article = data.schema().RequireClass("Article");
  ReconcilerOptions attr_only = ReconcilerOptions::DepGraph();
  attr_only.evidence_level = EvidenceLevel::kAttrWise;
  const double r_attr =
      EvaluateClass(data, Reconciler(attr_only).Run(data).cluster, article)
          .recall;
  const double r_full =
      EvaluateClass(data,
                    Reconciler(ReconcilerOptions::DepGraph()).Run(data)
                        .cluster,
                    article)
          .recall;
  EXPECT_GE(r_full, r_attr);
}

TEST(CoraTest, AuthorsNamedOnly) {
  // Cora person references carry only names (the paper's premise for why
  // the single-class baseline struggles there).
  const Dataset data = datagen::GenerateCora(SmallCora(15));
  const int person = data.schema().RequireClass("Person");
  EXPECT_EQ(data.schema().class_def(person).FindAttribute("email"), -1);
  const int name = data.schema().RequireAttribute(person, "name");
  for (const RefId id : data.ReferencesOfClass(person)) {
    EXPECT_FALSE(data.reference(id).atomic_values(name).empty());
  }
}

TEST(CoraTest, CitationCountsRoughlyZipf) {
  const Dataset data = datagen::GenerateCora(SmallCora(16));
  const int article = data.schema().RequireClass("Article");
  std::map<int, int> citations_per_paper;
  for (const RefId id : data.ReferencesOfClass(article)) {
    ++citations_per_paper[data.gold_entity(id)];
  }
  int max_citations = 0;
  for (const auto& [gold, count] : citations_per_paper) {
    max_citations = std::max(max_citations, count);
  }
  const double mean =
      320.0 / static_cast<double>(citations_per_paper.size());
  EXPECT_GT(max_citations, mean);  // Head heavier than the mean.
}

}  // namespace
}  // namespace recon
