// Canopy-sharded reconciliation (src/shard/, DESIGN.md §14) must be
// undetectable in the output: for every tested (shards × threads)
// combination — budget epochs on or off, execution caps binding or not —
// the partition AND the merged-pair sequence ShardedReconcile produces
// equal the monolithic Reconciler::Run output on the same dataset. Runs
// under AddressSanitizer and ThreadSanitizer via the ctest `asan` /
// `tsan` labels.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/candidates.h"
#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "datagen/pim_generator.h"
#include "model/dataset.h"
#include "shard/partitioner.h"
#include "shard/sharded_reconciler.h"
#include "util/union_find.h"

namespace recon {
namespace {

Dataset SmallPimB() {
  datagen::PimConfig config = datagen::PimConfigB();
  config = datagen::ScaleConfig(config, 0.12);
  return datagen::GeneratePim(config);
}

Dataset SmallCora() {
  datagen::CoraConfig config;
  config.num_papers = 30;
  config.num_citations = 300;
  config.num_authors = 60;
  config.num_venue_series = 12;
  return datagen::GenerateCora(config);
}

/// FNV-1a over the cluster vector: the golden fingerprint of a partition.
uint64_t Fingerprint(const std::vector<int>& cluster) {
  uint64_t h = 1469598103934665603ull;
  for (const int c : cluster) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(c));
    h *= 1099511628211ull;
  }
  return h;
}

/// The partition the merged pairs induce under transitive closure,
/// canonicalized to smallest member (matching FixedPointSolver::Closure).
std::vector<int> ClosureOfPairs(
    int n, const std::vector<std::pair<RefId, RefId>>& pairs) {
  UnionFind uf(n);
  for (const auto& [a, b] : pairs) uf.Union(a, b);
  std::vector<int> cluster(n);
  std::vector<int> canonical(n, -1);
  for (int i = 0; i < n; ++i) {
    const int root = uf.Find(i);
    if (canonical[root] < 0) canonical[root] = i;
    cluster[i] = canonical[root];
  }
  return cluster;
}

void ExpectSameResult(const Dataset& dataset, const ReconcileResult& mono,
                      const ReconcileResult& sharded,
                      const std::string& what) {
  EXPECT_EQ(Fingerprint(mono.cluster), Fingerprint(sharded.cluster)) << what;
  EXPECT_EQ(mono.cluster, sharded.cluster) << what;
  // Byte-identical includes the merged-pair sequence: the sharded path
  // runs the same canonical solve, so even the commit order matches.
  EXPECT_EQ(mono.merged_pairs, sharded.merged_pairs) << what;
  // And the reported pairs must close to the reported partition.
  EXPECT_EQ(ClosureOfPairs(dataset.num_references(), sharded.merged_pairs),
            sharded.cluster)
      << what;
}

void SweepDataset(const Dataset& dataset, const std::string& name) {
  ReconcilerOptions base;
  const ReconcileResult mono = Reconciler(base).Run(dataset);
  for (const int shards : {1, 2, 4, 8}) {
    for (const int threads : {1, 2, 4, 8}) {
      ReconcilerOptions options = base;
      options.num_shards = shards;
      options.num_threads = threads;
      const ReconcileResult sharded =
          shard::ShardedReconcile(dataset, options);
      const std::string what = name + " shards=" + std::to_string(shards) +
                               " threads=" + std::to_string(threads);
      ExpectSameResult(dataset, mono, sharded, what);
      EXPECT_EQ(sharded.stats.num_shards, shards) << what;
      if (shards > 1) {
        // The rarest-key partition cannot keep every shared block
        // intact, so boundary pairs exist and both phases commit merges.
        EXPECT_GT(sharded.stats.num_boundary_pairs, 0) << what;
        EXPECT_GT(sharded.stats.num_shard_merges, 0) << what;
      }
    }
  }
}

TEST(ShardEquivalenceTest, PimBMatchesMonolithicAcrossShardsAndThreads) {
  SweepDataset(SmallPimB(), "pim-b");
}

TEST(ShardEquivalenceTest, CoraMatchesMonolithicAcrossShardsAndThreads) {
  SweepDataset(SmallCora(), "cora");
}

// Budget epochs on: a generous soft memory cap (never trips, but every
// shard runs a live budget epoch and probes fire) plus a deliberately tiny
// similarity-memo bound (binding: constant evictions/bypasses). Both are
// byte-identical knobs by design, so the output must still match.
TEST(ShardEquivalenceTest, BindingMemoAndLiveBudgetEpochs) {
  const Dataset dataset = SmallPimB();
  ReconcilerOptions base;
  base.budget.soft_max_memory_bytes = int64_t{4} << 30;
  base.sim_memo_max_bytes = 1 << 12;
  const ReconcileResult mono = Reconciler(base).Run(dataset);
  for (const int shards : {2, 4}) {
    for (const int threads : {1, 4}) {
      ReconcilerOptions options = base;
      options.num_shards = shards;
      options.num_threads = threads;
      const ReconcileResult sharded =
          shard::ShardedReconcile(dataset, options);
      ExpectSameResult(dataset, mono, sharded,
                       "budget shards=" + std::to_string(shards) +
                           " threads=" + std::to_string(threads));
      EXPECT_EQ(sharded.stats.stop_reason, StopReason::kConverged);
    }
  }
}

// Deterministic execution caps (iteration / merge limits) are contracts
// over the canonical merge sequence — which is exactly the sequence the
// sharded path runs, so a binding cap truncates it identically.
TEST(ShardEquivalenceTest, BindingExecutionCapsStayByteIdentical) {
  const Dataset dataset = SmallCora();
  ReconcilerOptions base;
  base.budget.max_solver_iterations = 500;  // Binding: freezes mid-solve.
  const ReconcileResult mono = Reconciler(base).Run(dataset);
  EXPECT_EQ(mono.stats.stop_reason, StopReason::kIterationBudget);
  ReconcilerOptions options = base;
  options.num_shards = 4;
  options.num_threads = 4;
  const ReconcileResult sharded = shard::ShardedReconcile(dataset, options);
  ExpectSameResult(dataset, mono, sharded, "iteration cap");
  EXPECT_EQ(sharded.stats.stop_reason, StopReason::kIterationBudget);
  EXPECT_EQ(sharded.stats.num_shards, 4);
}

// ---- Boundary pass ------------------------------------------------------

/// Two references of one person engineered to straddle two shards:
/// "Jonathan Strudelmeyer" vs "Jonathan Strudelmayer" share only the
/// (common) first-name block; each last name is its own rarer block,
/// anchored by filler references so the rarest-key partition sends the two
/// spellings to different shards. Their candidate pair is then a boundary
/// pair: only the boundary staging pass computes its evidence.
Dataset StraddlingDataset(RefId* left, RefId* right) {
  Dataset data(BuildPimSchema());
  const Schema& s = data.schema();
  const int kPerson = s.RequireClass("Person");
  const int kName = s.RequireAttribute(kPerson, "name");

  auto person = [&](int gold, const std::string& name) {
    const RefId id = data.NewReference(kPerson, gold);
    data.mutable_reference(id).AddAtomicValue(kName, name);
    return id;
  };

  *left = person(0, "Jonathan Strudelmeyer");
  *right = person(0, "Jonathan Strudelmayer");
  // Filler entities anchoring each last-name block (distinct persons),
  // plus enough other Jonathans that the shared first-name block is never
  // any reference's rarest key.
  person(1, "Augusta Strudelmeyer");
  person(2, "Bertram Strudelmeyer");
  person(3, "Cordelia Strudelmayer");
  person(4, "Dagobert Strudelmayer");
  person(5, "Jonathan Quiggleworth");
  person(6, "Jonathan Pfefferberg");
  person(7, "Jonathan Ollivander");
  person(8, "Jonathan Nimbleton");
  return data;
}

TEST(ShardBoundaryTest, StraddlingEntityRecoveredByBoundaryPass) {
  RefId left = kInvalidRef;
  RefId right = kInvalidRef;
  const Dataset dataset = StraddlingDataset(&left, &right);

  ReconcilerOptions options;
  options.premerge_equal_emails = false;
  const ReconcileResult mono = Reconciler(options).Run(dataset);
  ASSERT_EQ(mono.cluster[left], mono.cluster[right])
      << "monolithic solve must reconcile the straddler";

  options.num_shards = 2;
  const ReconcileResult sharded = shard::ShardedReconcile(dataset, options);
  ExpectSameResult(dataset, mono, sharded, "straddler");
  // The pair must actually have crossed shards: its evidence was staged by
  // the boundary pass and its merge is accounted as a boundary merge.
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
  const shard::ShardPartition part =
      shard::PartitionByBlockingKey(dataset, binding, 2, 1);
  ASSERT_NE(part.shard_of[left], part.shard_of[right])
      << "the engineered spellings must land in different shards";
  EXPECT_GT(sharded.stats.num_boundary_pairs, 0);
  EXPECT_GT(sharded.stats.num_boundary_merges, 0);
}

// ---- Partitioner --------------------------------------------------------

TEST(PartitionerTest, SingleShardIsTrivial) {
  const Dataset dataset = SmallCora();
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
  const shard::ShardPartition part =
      shard::PartitionByBlockingKey(dataset, binding, 1, 1);
  EXPECT_EQ(part.num_shards, 1);
  for (const int s : part.shard_of) EXPECT_EQ(s, 0);
}

TEST(PartitionerTest, CoversAllShardsAndIsThreadInvariant) {
  const Dataset dataset = SmallPimB();
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
  const shard::ShardPartition part =
      shard::PartitionByBlockingKey(dataset, binding, 4, 1);
  ASSERT_EQ(static_cast<int>(part.shard_of.size()),
            dataset.num_references());
  std::vector<int64_t> load(4, 0);
  for (const int s : part.shard_of) {
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    ++load[s];
  }
  for (const int64_t l : load) EXPECT_GT(l, 0) << "every shard populated";

  // The assignment is a pure function of (dataset, num_shards): the
  // parallel key extraction must not leak scheduling into it.
  for (const int threads : {2, 8}) {
    const shard::ShardPartition again =
        shard::PartitionByBlockingKey(dataset, binding, 4, threads);
    EXPECT_EQ(part.shard_of, again.shard_of);
  }
}

TEST(PartitionerTest, RareKeyGroupsStayIntact) {
  // All references of one rare block land in one shard.
  const Dataset dataset = SmallPimB();
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
  const shard::ShardPartition part =
      shard::PartitionByBlockingKey(dataset, binding, 4, 1);

  // Recompute each reference's rarest key and check co-location.
  const int n = dataset.num_references();
  std::vector<std::vector<std::string>> keys(n);
  std::unordered_map<std::string, int64_t> block_size;
  for (RefId id = 0; id < n; ++id) {
    keys[id] = BlockingKeys(dataset, id, binding);
    for (const std::string& key : keys[id]) ++block_size[key];
  }
  std::unordered_map<std::string, int> shard_of_key;
  for (RefId id = 0; id < n; ++id) {
    const std::string* primary = nullptr;
    int64_t primary_size = 0;
    for (const std::string& key : keys[id]) {
      const int64_t size = block_size[key];
      if (primary == nullptr || size < primary_size ||
          (size == primary_size && key < *primary)) {
        primary = &key;
        primary_size = size;
      }
    }
    if (primary == nullptr) continue;
    const auto [it, inserted] =
        shard_of_key.try_emplace(*primary, part.shard_of[id]);
    EXPECT_EQ(it->second, part.shard_of[id])
        << "block '" << *primary << "' split across shards";
  }
}

}  // namespace
}  // namespace recon
