#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "strsim/edit_distance.h"
#include "strsim/email.h"
#include "strsim/jaro_winkler.h"
#include "strsim/person_name.h"
#include "strsim/tfidf.h"
#include "strsim/title.h"
#include "strsim/tokens.h"
#include "strsim/venue.h"

namespace recon::strsim {
namespace {

// ---- Edit distance ----------------------------------------------------------

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("stonebraker", "stonebaker"),
            LevenshteinDistance("stonebaker", "stonebraker"));
}

TEST(EditDistanceTest, BoundedEarlyExit) {
  EXPECT_EQ(BoundedLevenshteinDistance("kitten", "sitting", 1), 2);
  EXPECT_EQ(BoundedLevenshteinDistance("kitten", "sitting", 3), 3);
  EXPECT_EQ(BoundedLevenshteinDistance("aaaa", "bbbbbbbb", 2), 3);
}

TEST(EditDistanceTest, SimilarityRange) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  const double sim = EditSimilarity("stonebraker", "stonebaker");
  EXPECT_GT(sim, 0.85);
  EXPECT_LT(sim, 1.0);
}

// ---- Jaro-Winkler -----------------------------------------------------------

TEST(JaroWinklerTest, Extremes) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, ClassicValues) {
  // Canonical record-linkage test pairs (Winkler's own examples).
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944, 0.001);
  EXPECT_NEAR(JaroSimilarity("DWAYNE", "DUANE"), 0.822, 0.001);
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961, 0.001);
}

TEST(JaroWinklerTest, PrefixBoostsButBounded) {
  const double jaro = JaroSimilarity("prefixes", "prefixed");
  const double jw = JaroWinklerSimilarity("prefixes", "prefixed");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
}

TEST(JaroWinklerTest, SymmetricProperty) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"stonebraker", "stonebaker"},
      {"halevy", "halvey"},
      {"wong", "wang"},
  };
  for (const auto& [a, b] : pairs) {
    EXPECT_DOUBLE_EQ(JaroWinklerSimilarity(a, b), JaroWinklerSimilarity(b, a));
  }
}

// ---- Token measures ----------------------------------------------------------

TEST(TokensTest, JaccardDiceOverlap) {
  const std::vector<std::string> a = {"data", "base", "systems"};
  const std::vector<std::string> b = {"data", "base", "management"};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(DiceSimilarity(a, b), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient(a, b), 2.0 / 3.0);
}

TEST(TokensTest, EmptyBehaviour) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
}

TEST(TokensTest, DuplicatesCollapse) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "b"}, {"a", "b", "b"}), 1.0);
}

TEST(TokensTest, CharacterNgrams) {
  const auto grams = CharacterNgrams("ab", 2);
  EXPECT_EQ(grams, (std::vector<std::string>{"#a", "ab", "b$"}));
  EXPECT_TRUE(CharacterNgrams("", 3).empty());
}

TEST(TokensTest, NgramSimilarityCatchesTypos) {
  EXPECT_GT(NgramSimilarity("stonebraker", "stonebaker"), 0.5);
  EXPECT_LT(NgramSimilarity("stonebraker", "widom"), 0.1);
  EXPECT_DOUBLE_EQ(NgramSimilarity("same", "same"), 1.0);
}

TEST(TokensTest, MongeElkanForgivesTokenNoise) {
  const std::vector<std::string> a = {"query", "optimization"};
  const std::vector<std::string> b = {"qeury", "optimizaton"};
  EXPECT_GT(SymmetricMongeElkan(a, b), 0.85);
}

// ---- TF-IDF -------------------------------------------------------------------

TEST(TfIdfTest, RareTokensDominate) {
  TfIdfModel model;
  // "database" is ubiquitous; "reconciliation" is rare.
  for (int i = 0; i < 50; ++i) model.AddDocument({"database", "systems"});
  model.AddDocument({"reconciliation", "database"});
  model.AddDocument({"reconciliation", "linkage"});

  const double rare_match =
      model.Similarity({"reconciliation", "database"},
                       {"reconciliation", "linkage"});
  const double common_match =
      model.Similarity({"reconciliation", "database"},
                       {"database", "linkage"});
  EXPECT_GT(rare_match, common_match);
}

TEST(TfIdfTest, IdenticalDocsScoreOne) {
  TfIdfModel model;
  model.AddDocument({"a", "b"});
  EXPECT_NEAR(model.Similarity({"a", "b"}, {"a", "b"}), 1.0, 1e-9);
}

TEST(TfIdfTest, SharedOovTokensMatch) {
  TfIdfModel model;
  model.AddDocument({"known"});
  EXPECT_GT(model.Similarity({"unseen", "known"}, {"unseen", "known"}), 0.99);
}

TEST(TfIdfTest, DisjointDocsScoreZero) {
  TfIdfModel model;
  model.Fit({{"a", "b"}, {"c", "d"}});
  EXPECT_DOUBLE_EQ(model.Similarity({"a", "b"}, {"c", "d"}), 0.0);
}

// ---- Person names ---------------------------------------------------------------

TEST(PersonNameTest, ParseFirstLast) {
  const PersonName name = ParsePersonName("Michael Stonebraker");
  EXPECT_EQ(name.last, "stonebraker");
  ASSERT_EQ(name.given.size(), 1u);
  EXPECT_EQ(name.given[0].text, "michael");
  EXPECT_FALSE(name.given[0].is_initial);
  EXPECT_TRUE(name.IsFullName());
}

TEST(PersonNameTest, ParseFirstMiddleLast) {
  const PersonName name = ParsePersonName("Robert S. Epstein");
  EXPECT_EQ(name.last, "epstein");
  ASSERT_EQ(name.given.size(), 2u);
  EXPECT_EQ(name.given[0].text, "robert");
  EXPECT_FALSE(name.given[0].is_initial);
  EXPECT_EQ(name.given[1].text, "s");
  EXPECT_TRUE(name.given[1].is_initial);
}

TEST(PersonNameTest, ParseLastCommaPackedInitials) {
  const PersonName name = ParsePersonName("Epstein, R.S.");
  EXPECT_EQ(name.last, "epstein");
  ASSERT_EQ(name.given.size(), 2u);
  EXPECT_EQ(name.given[0].text, "r");
  EXPECT_TRUE(name.given[0].is_initial);
  EXPECT_EQ(name.given[1].text, "s");
  EXPECT_TRUE(name.given[1].is_initial);
  EXPECT_FALSE(name.IsFullName());
}

TEST(PersonNameTest, ParseLastCommaFirst) {
  const PersonName name = ParsePersonName("Stonebraker, Michael");
  EXPECT_EQ(name.last, "stonebraker");
  ASSERT_EQ(name.given.size(), 1u);
  EXPECT_EQ(name.given[0].text, "michael");
  EXPECT_TRUE(name.IsFullName());
}

TEST(PersonNameTest, ParseSingleToken) {
  const PersonName name = ParsePersonName("mike");
  EXPECT_TRUE(name.single_token);
  EXPECT_TRUE(name.last.empty());
  ASSERT_EQ(name.given.size(), 1u);
  EXPECT_EQ(name.given[0].text, "mike");
}

TEST(PersonNameTest, ParseEmptyAndWhitespace) {
  EXPECT_TRUE(ParsePersonName("").given.empty());
  EXPECT_TRUE(ParsePersonName("   ").given.empty());
}

TEST(PersonNameTest, NicknameCanonicalization) {
  EXPECT_EQ(CanonicalGivenName("Mike"), "michael");
  EXPECT_EQ(CanonicalGivenName("bob"), "robert");
  EXPECT_EQ(CanonicalGivenName("zygmunt"), "zygmunt");  // No mapping.
}

TEST(PersonNameSimilarityTest, IdenticalFullNames) {
  EXPECT_DOUBLE_EQ(PersonNameSimilarity("Eugene Wong", "Eugene Wong"), 1.0);
}

TEST(PersonNameSimilarityTest, AbbreviationMatchesStrongly) {
  const double sim = PersonNameSimilarity("Robert S. Epstein", "Epstein, R.S.");
  EXPECT_GT(sim, 0.9);
}

TEST(PersonNameSimilarityTest, NicknameMatchesFullName) {
  const double sim = PersonNameSimilarity("mike", "Michael Stonebraker");
  EXPECT_GT(sim, 0.7);
}

TEST(PersonNameSimilarityTest, DifferentPersonsScoreLow) {
  EXPECT_LT(PersonNameSimilarity("Eugene Wong", "Robert Epstein"), 0.6);
  EXPECT_LT(PersonNameSimilarity("Alice Smith", "Mary Jones"), 0.6);
}

TEST(PersonNameSimilarityTest, SymmetricProperty) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"Robert S. Epstein", "Epstein, R.S."},
      {"mike", "Michael Stonebraker"},
      {"Wong, E.", "Eugene Wong"},
  };
  for (const auto& [a, b] : pairs) {
    EXPECT_DOUBLE_EQ(PersonNameSimilarity(a, b), PersonNameSimilarity(b, a))
        << a << " vs " << b;
  }
}

TEST(PersonNameSimilarityTest, BoundedInUnitInterval) {
  const std::vector<std::string> names = {
      "Eugene Wong", "Wong, E.", "mike", "", "Robert S. Epstein",
      "Stonebraker, M.", "X", "Li Wei", "van der Berg, J.",
  };
  for (const auto& a : names) {
    for (const auto& b : names) {
      const double sim = PersonNameSimilarity(a, b);
      EXPECT_GE(sim, 0.0) << a << " / " << b;
      EXPECT_LE(sim, 1.0) << a << " / " << b;
    }
  }
}

TEST(PersonNameConstraintTest, ContradictionSameFirstDifferentLast) {
  EXPECT_TRUE(NamesContradict(ParsePersonName("Mary Smith"),
                              ParsePersonName("Mary Jones")));
  EXPECT_TRUE(NamesContradict(ParsePersonName("Matt Stonebraker"),
                              ParsePersonName("Matt Wong")));
}

TEST(PersonNameConstraintTest, ContradictionSameLastDifferentFirst) {
  EXPECT_TRUE(NamesContradict(ParsePersonName("Matt Stonebraker"),
                              ParsePersonName("Michael Stonebraker")));
}

TEST(PersonNameConstraintTest, NoContradictionForAbbreviations) {
  EXPECT_FALSE(NamesContradict(ParsePersonName("Stonebraker, M."),
                               ParsePersonName("Michael Stonebraker")));
  EXPECT_FALSE(NamesContradict(ParsePersonName("mike"),
                               ParsePersonName("Michael Stonebraker")));
}

TEST(PersonNameConstraintTest, NicknamesDoNotContradict) {
  EXPECT_FALSE(NamesContradict(ParsePersonName("Mike Stonebraker"),
                               ParsePersonName("Michael Stonebraker")));
}

TEST(PersonNameConstraintTest, Compatibility) {
  EXPECT_TRUE(NamesCompatible(ParsePersonName("Eugene Wong"),
                              ParsePersonName("Wong, E.")));
  EXPECT_FALSE(NamesCompatible(ParsePersonName("Eugene Wong"),
                               ParsePersonName("Eugene Epstein")));
  EXPECT_FALSE(NamesCompatible(ParsePersonName("Robert Epstein"),
                               ParsePersonName("Susan Epstein")));
}

// ---- Email -------------------------------------------------------------------

TEST(EmailTest, Parse) {
  const EmailAddress email = ParseEmail("Stonebraker@CSAIL.MIT.EDU");
  EXPECT_EQ(email.account, "stonebraker");
  EXPECT_EQ(email.server, "csail.mit.edu");
  EXPECT_EQ(ParseEmail("noserver").account, "noserver");
  EXPECT_TRUE(ParseEmail("noserver").server.empty());
}

TEST(EmailSimilarityTest, ExactMatchIsOne) {
  EXPECT_DOUBLE_EQ(
      EmailSimilarity("a@b.edu", "A@B.EDU"), 1.0);
}

TEST(EmailSimilarityTest, SameAccountDifferentServerScoresHigh) {
  const double sim =
      EmailSimilarity("stonebraker@csail.mit.edu", "stonebraker@mit.edu");
  EXPECT_GE(sim, 0.9);
  EXPECT_LT(sim, 1.0);
}

TEST(EmailSimilarityTest, DifferentAccountsSameServerScoreLow) {
  EXPECT_LT(EmailSimilarity("wong@mit.edu", "epstein@mit.edu"), 0.5);
}

TEST(NameEmailSimilarityTest, LastNameAccount) {
  EXPECT_GE(NameEmailSimilarity("Stonebraker, M.",
                                "stonebraker@csail.mit.edu"),
            0.8);
}

TEST(NameEmailSimilarityTest, PatternAccounts) {
  EXPECT_GE(NameEmailSimilarity("Robert Epstein", "repstein@cs.wisc.edu"),
            0.85);
  EXPECT_GE(NameEmailSimilarity("Robert Epstein",
                                "robert.epstein@cs.wisc.edu"),
            0.9);
}

TEST(NameEmailSimilarityTest, NicknameAccount) {
  EXPECT_GE(NameEmailSimilarity("Michael Stonebraker", "mike@mit.edu"), 0.6);
}

TEST(NameEmailSimilarityTest, UnrelatedScoresZero) {
  EXPECT_LT(NameEmailSimilarity("Eugene Wong", "epstein@mit.edu"), 0.3);
}

// ---- Venue -------------------------------------------------------------------

TEST(VenueTest, AcronymGeneration) {
  EXPECT_EQ(VenueAcronym("Very Large Data Bases"), "vldb");
  EXPECT_EQ(VenueAcronym("Proceedings of the Conference on Management of "
                         "Data"),
            "md");  // Generic venue words removed.
}

TEST(VenueTest, AcronymExpansionMatches) {
  EXPECT_GE(VenueNameSimilarity("VLDB",
                                "International Conference on Very Large "
                                "Data Bases"),
            0.9);
  EXPECT_GE(VenueNameSimilarity("SIGMOD",
                                "ACM Conference on Management of Data"),
            0.5);
}

TEST(VenueTest, SameStringIsOne) {
  EXPECT_DOUBLE_EQ(VenueNameSimilarity("ACM SIGMOD", "ACM SIGMOD"), 1.0);
}

TEST(VenueTest, ProceedingsPrefixIgnored) {
  EXPECT_GE(VenueNameSimilarity(
                "Proceedings of the International Conference on Very Large "
                "Data Bases",
                "Very Large Data Bases"),
            0.85);
}

TEST(VenueTest, UnrelatedVenuesScoreLow) {
  EXPECT_LT(VenueNameSimilarity("SIGMOD", "SOSP"), 0.4);
}

TEST(VenueTest, YearSimilarity) {
  EXPECT_DOUBLE_EQ(YearSimilarity("1978", "1978"), 1.0);
  EXPECT_DOUBLE_EQ(YearSimilarity("1978", "1979"), 0.5);
  EXPECT_DOUBLE_EQ(YearSimilarity("1978", "1985"), 0.0);
  EXPECT_DOUBLE_EQ(YearSimilarity("", "1978"), 0.0);
}

TEST(VenueTest, LocationSimilarity) {
  EXPECT_GE(LocationSimilarity("Austin, Texas", "Austin TX"), 0.5);
  EXPECT_DOUBLE_EQ(LocationSimilarity("Austin, Texas", "Austin, Texas"), 1.0);
}

// ---- Title / pages -------------------------------------------------------------

TEST(TitleTest, Normalization) {
  EXPECT_EQ(NormalizeTitle("  Distributed Query-Processing! "),
            "distributed query processing");
}

TEST(TitleTest, CaseAndPunctInsensitive) {
  EXPECT_DOUBLE_EQ(
      TitleSimilarity("Distributed Query Processing",
                      "distributed query processing."),
      1.0);
}

TEST(TitleTest, TypoTolerant) {
  EXPECT_GT(TitleSimilarity("Distributed query processing in a relational "
                            "data base system",
                            "Distributed query procesing in a relational "
                            "data base system"),
            0.9);
}

TEST(TitleTest, DifferentTitlesScoreLow) {
  EXPECT_LT(TitleSimilarity("Distributed query processing",
                            "Epidemic gossip protocols"),
            0.3);
}

TEST(PagesTest, ParseAndCompare) {
  const auto range = ParsePages("pp. 169--180");
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 169);
  EXPECT_EQ(range->last, 180);

  EXPECT_DOUBLE_EQ(PagesSimilarity("169-180", "169--180"), 1.0);
  EXPECT_DOUBLE_EQ(PagesSimilarity("169-180", "169-185"), 0.8);
  EXPECT_DOUBLE_EQ(PagesSimilarity("169-180", "175-190"), 0.5);
  EXPECT_DOUBLE_EQ(PagesSimilarity("169-180", "200-210"), 0.0);
  EXPECT_FALSE(ParsePages("n/a").has_value());
}

}  // namespace
}  // namespace recon::strsim
