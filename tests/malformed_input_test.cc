// Malformed-input hardening for the extraction substrate: truncated,
// garbled, NUL-ridden, and oversized inputs must come back as non-OK
// Status (or be skipped by the lenient file-level parsers) — never crash,
// never read out of bounds. Runs under AddressSanitizer + UBSan via the
// ctest `asan` label (tools/check_asan.sh).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "extract/bibtex_parser.h"
#include "extract/csv_import.h"
#include "extract/email_parser.h"
#include "extract/extractor.h"
#include "model/dataset.h"
#include "util/status.h"

namespace recon {
namespace {

using extract::BibtexEntry;
using extract::CsvImportSpec;
using extract::EmailMessage;
using extract::ImportCsv;
using extract::ParseBibtexFile;
using extract::ParseCsv;
using extract::ParseEmailMessage;
using extract::ParseMbox;
using extract::ParseNextBibtexEntry;

// ---- BibTeX ----------------------------------------------------------------

TEST(MalformedBibtexTest, TruncatedAndGarbledEntriesReturnErrors) {
  const std::string cases[] = {
      "@inproceedings{key, author = {unterminated brace",
      "@inproceedings{key, author = {nested {deeper {still",
      "@article{key, title = \"unterminated quote",
      "@article{key, title",           // No '=' and truncated.
      "@article{key, = {no name}}",    // Field with empty name.
      "@misc",                         // Type but no '{'.
      "@{no type}",                    // '{' with empty type is tolerated
                                       // or rejected — just don't crash.
      "@article{key, title = }",       // '=' but no value.
      std::string("@article{k\0ey, title = {x}}", 27),  // Embedded NUL.
  };
  for (const std::string& text : cases) {
    SCOPED_TRACE(text.substr(0, 40));
    size_t pos = 0;
    const StatusOr<BibtexEntry> entry = ParseNextBibtexEntry(text, &pos);
    // Either a parse error or (for the tolerated shapes) a parsed entry;
    // the hard requirements are: no crash, and `pos` advanced so callers
    // looping on the file cannot spin forever.
    if (!entry.ok()) {
      EXPECT_NE(entry.status().code(), StatusCode::kOk);
    }
    EXPECT_GT(pos, 0u);
  }
}

TEST(MalformedBibtexTest, UnterminatedEntryIsInvalidArgument) {
  const std::string text = "@inproceedings{epstein78,\n  author = {Robert";
  size_t pos = 0;
  const StatusOr<BibtexEntry> entry = ParseNextBibtexEntry(text, &pos);
  ASSERT_FALSE(entry.ok());
  EXPECT_EQ(entry.status().code(), StatusCode::kInvalidArgument);
}

TEST(MalformedBibtexTest, NoEntryAtAllIsNotFound) {
  size_t pos = 0;
  const StatusOr<BibtexEntry> entry =
      ParseNextBibtexEntry("plain text, no at-sign", &pos);
  ASSERT_FALSE(entry.ok());
  EXPECT_EQ(entry.status().code(), StatusCode::kNotFound);
}

TEST(MalformedBibtexTest, FileParserSkipsGarbageAndKeepsGoodEntries) {
  // The bad entry fails fast (missing '=') without a brace scan that
  // could swallow the good one; the trailer is an unterminated value.
  const std::string text =
      "@article{bad, title no-equals-sign}\n"
      "@article{good, author = {A. Smith}, title = {Fine}}\n"
      "@article{tail, note = {unterminated";
  const std::vector<BibtexEntry> entries = ParseBibtexFile(text);
  // The lenient file parser never throws and recovers at least the
  // well-formed entry (resync behavior on the bad ones may vary).
  bool found_good = false;
  for (const BibtexEntry& e : entries) {
    if (e.key == "good") found_good = true;
  }
  EXPECT_TRUE(found_good);
}

TEST(MalformedBibtexTest, OversizedFieldDoesNotCrash) {
  std::string text = "@article{big, title = {";
  text.append(1 << 20, 'x');  // 1 MiB single value.
  text += "}}";
  size_t pos = 0;
  const StatusOr<BibtexEntry> entry = ParseNextBibtexEntry(text, &pos);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value().Field("title").size(), size_t{1} << 20);
}

// ---- Email / mbox ----------------------------------------------------------

TEST(MalformedEmailTest, HeaderlessInputIsAnError) {
  const std::string cases[] = {
      "",
      "\n\n\n",
      "just a body with no headers whatsoever",
      std::string("\0\0\0\0", 4),
  };
  for (const std::string& text : cases) {
    SCOPED_TRACE(text.substr(0, 20));
    const StatusOr<EmailMessage> msg = ParseEmailMessage(text);
    EXPECT_FALSE(msg.ok());
  }
}

TEST(MalformedEmailTest, GarbledHeadersNeverCrash) {
  const std::string cases[] = {
      "From: <<<@@@>>>\n\nbody",
      "To: \"Unterminated quote <x@y\n\n",
      "From: a@b\nTo: ,,,,,\nCc: <>\n\n",
      "X-Weird: \xff\xfe\xfd\nFrom: ok@example.com\n\n",
      ":\n::\n:::\n\n",                       // Colon-only lines.
      "From: a@b\n\tcontinuation forever",    // Truncated mid-fold.
      std::string("From: a\0b@c\n\n", 13),    // NUL inside a header.
  };
  for (const std::string& text : cases) {
    SCOPED_TRACE(text.substr(0, 30));
    const StatusOr<EmailMessage> msg = ParseEmailMessage(text);
    // Some of these still yield a (degenerate) message — that's fine; the
    // requirement is no crash and no invalid memory access.
    (void)msg;
  }
}

TEST(MalformedEmailTest, MboxWithGarbageMessagesSkipsThem) {
  const std::string mbox =
      "From alice Mon Jan  1 00:00:00 2026\n"
      "From: alice@example.com\nTo: bob@example.com\n\nhi\n"
      "From garbage-without-headers\n"
      "no colon lines here at all\n"
      "From carol Mon Jan  1 00:00:01 2026\n"
      "From: carol@example.com\n\n";
  const std::vector<EmailMessage> messages = ParseMbox(mbox);
  EXPECT_EQ(messages.size(), 2u);  // The headerless chunk is skipped.
}

// ---- CSV -------------------------------------------------------------------

class MalformedCsvTest : public ::testing::Test {
 protected:
  MalformedCsvTest() : dataset_(BuildPimSchema()) {
    const int person = dataset_.schema().RequireClass("Person");
    spec_.class_id = person;
    spec_.column_to_attribute = {
        dataset_.schema().RequireAttribute(person, "name"),
        dataset_.schema().RequireAttribute(person, "email")};
  }

  Dataset dataset_;
  CsvImportSpec spec_;
};

TEST_F(MalformedCsvTest, MissingHeaderOnlyInputAddsNothing) {
  // has_header=true with a header-only (or empty) file: zero rows, OK.
  for (const std::string& text : {std::string("name,email\n"),
                                  std::string(""), std::string("\n\n")}) {
    SCOPED_TRACE(text);
    Dataset dataset(BuildPimSchema());
    const StatusOr<int> n = ImportCsv(text, spec_, &dataset);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 0);
  }
}

TEST_F(MalformedCsvTest, BadGoldLabelIsInvalidArgument) {
  CsvImportSpec spec = spec_;
  spec.gold_column = 2;
  const std::string cases[] = {
      "name,email,gold\nAlice,a@x.com,not-a-number\n",
      "name,email,gold\nAlice,a@x.com\n",  // Row shorter than gold column.
      "name,email,gold\nAlice,a@x.com,\n",
      "name,email,gold\nAlice,a@x.com,12.5\n",
  };
  for (const std::string& text : cases) {
    SCOPED_TRACE(text);
    Dataset dataset(BuildPimSchema());
    const StatusOr<int> n = ImportCsv(text, spec, &dataset);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(MalformedCsvTest, BadSpecIsInvalidArgument) {
  CsvImportSpec bad_class = spec_;
  bad_class.class_id = 999;
  EXPECT_FALSE(ImportCsv("a,b\n", bad_class, &dataset_).ok());

  CsvImportSpec bad_attr = spec_;
  bad_attr.column_to_attribute = {999};
  EXPECT_FALSE(ImportCsv("a,b\n", bad_attr, &dataset_).ok());

  EXPECT_FALSE(ImportCsv("a,b\n", spec_, nullptr).ok());
}

TEST_F(MalformedCsvTest, EmbeddedNulsAndControlBytesDoNotCrash) {
  const std::string text =
      std::string("name,email\nA\0lice,a@x.com\n\x01\x02,\x03@\x04\n", 33);
  const StatusOr<int> n = ImportCsv(text, spec_, &dataset_);
  ASSERT_TRUE(n.ok());  // NULs are data, not structure.
  EXPECT_EQ(n.value(), 2);
}

TEST_F(MalformedCsvTest, UnterminatedQuoteAndOversizedFieldsParse) {
  // RFC-4180 leniency: an unterminated quoted field swallows the rest of
  // the input — ugly, but defined, and must not over-read.
  const auto rows = ParseCsv("a,\"unterminated\nb,c\nd,e");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1], "unterminated\nb,c\nd,e");

  std::string big = "name,email\n";
  big.append(1 << 20, 'x');
  big += ",huge@example.com\n";
  Dataset dataset(BuildPimSchema());
  const StatusOr<int> n = ImportCsv(big, spec_, &dataset);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 1);
}

TEST_F(MalformedCsvTest, RaggedRowsAreTolerated) {
  // Short rows leave later attributes unset; long rows ignore the extras.
  const std::string text = "name,email\nAlice\nBob,b@x.com,extra,columns\n";
  const StatusOr<int> n = ImportCsv(text, spec_, &dataset_);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 2);
}

// ---- Extractor end-to-end on hostile input ---------------------------------

TEST(MalformedExtractorTest, HostileMboxAndBibtexSurviveExtraction) {
  extract::Extractor extractor;
  extractor.AddMbox(
      "From x\n\x01\x02\x03\nFrom y\nFrom: someone@example.com\n\n");
  extractor.AddBibtexFile("@article{a, title = {unterminated");
  const Dataset dataset = extractor.TakeDataset();
  EXPECT_GE(dataset.num_references(), 0);
}

}  // namespace
}  // namespace recon
