#include <gtest/gtest.h>

#include "sim/class_sim.h"
#include "sim/comparators.h"
#include "sim/evidence.h"
#include "sim/params.h"

namespace recon {
namespace {

SimParams Params() { return SimParams{}; }

EvidenceSummary WithEvidence(
    std::initializer_list<std::pair<Evidence, double>> items) {
  EvidenceSummary ev;
  for (const auto& [type, sim] : items) ev.Offer(type, sim);
  return ev;
}

// ---- EvidenceSummary --------------------------------------------------------

TEST(EvidenceSummaryTest, AbsentVsZero) {
  EvidenceSummary ev;
  EXPECT_FALSE(ev.Has(kEvPersonName));
  ev.Offer(kEvPersonName, 0.0);
  EXPECT_TRUE(ev.Has(kEvPersonName));
  EXPECT_DOUBLE_EQ(ev.Get(kEvPersonName), 0.0);
}

TEST(EvidenceSummaryTest, OfferKeepsMax) {
  EvidenceSummary ev;
  ev.Offer(kEvPersonEmail, 0.6);
  ev.Offer(kEvPersonEmail, 0.9);
  ev.Offer(kEvPersonEmail, 0.3);
  EXPECT_DOUBLE_EQ(ev.Get(kEvPersonEmail), 0.9);
}

// ---- Person similarity ---------------------------------------------------------

TEST(PersonSimilarityTest, EmailIsKeyAttribute) {
  PersonSimilarity sim(Params());
  // Identical emails merge even with dissimilar names (paper §4).
  EvidenceSummary ev = WithEvidence({{kEvPersonEmail, 1.0},
                                     {kEvPersonName, 0.1}});
  EXPECT_DOUBLE_EQ(sim.Compute(ev), 1.0);
}

TEST(PersonSimilarityTest, IdenticalFullNamesMergeAlone) {
  PersonSimilarity sim(Params());
  EvidenceSummary ev = WithEvidence({{kEvPersonName, 1.0}});
  EXPECT_GE(sim.Compute(ev), Params().merge_threshold);
}

TEST(PersonSimilarityTest, AbbreviatedNameAloneDoesNotMerge) {
  PersonSimilarity sim(Params());
  // "Wong, E." vs "Eugene Wong" style evidence, capped at 0.8.
  EvidenceSummary ev = WithEvidence({{kEvPersonName, kAbbreviatedNameCap}});
  EXPECT_LT(sim.Compute(ev), Params().merge_threshold);
}

TEST(PersonSimilarityTest, AbbreviatedNamePlusArticleMerges) {
  PersonSimilarity sim(Params());
  EvidenceSummary ev = WithEvidence({{kEvPersonName, kAbbreviatedNameCap}});
  ev.strong_merged = 1;  // One merged authored-article pair.
  EXPECT_GE(sim.Compute(ev), Params().merge_threshold);
}

TEST(PersonSimilarityTest, BooleanEvidenceGatedOnTrv) {
  PersonSimilarity sim(Params());
  EvidenceSummary ev = WithEvidence({{kEvPersonName, 0.5}});
  ev.strong_merged = 5;
  ev.weak_merged = 5;
  // S_rv = 0.5 < t_rv = 0.7: boolean evidence must not apply.
  EXPECT_DOUBLE_EQ(sim.Compute(ev), 0.5);
}

TEST(PersonSimilarityTest, WeakEvidenceAccumulates) {
  PersonSimilarity sim(Params());
  EvidenceSummary base = WithEvidence({{kEvPersonName, 0.75}});
  const double s0 = sim.Compute(base);
  base.weak_merged = 2;
  const double s2 = sim.Compute(base);
  EXPECT_NEAR(s2 - s0, 2 * Params().person.gamma, 1e-9);
}

TEST(PersonSimilarityTest, NameEmailEvidenceHelpsWithoutEmail) {
  PersonSimilarity sim(Params());
  const double without =
      sim.Compute(WithEvidence({{kEvPersonName, 0.6}}));
  const double with = sim.Compute(
      WithEvidence({{kEvPersonName, 0.6}, {kEvPersonNameEmail, 0.9}}));
  EXPECT_GT(with, without);
}

TEST(PersonSimilarityTest, NoEvidenceScoresZero) {
  PersonSimilarity sim(Params());
  EXPECT_DOUBLE_EQ(sim.Compute(EvidenceSummary()), 0.0);
}

TEST(PersonSimilarityTest, MonotoneInEachChannel) {
  PersonSimilarity sim(Params());
  // Property: raising any single evidence value never lowers the score.
  const Evidence channels[] = {kEvPersonName, kEvPersonEmail,
                               kEvPersonNameEmail};
  for (const Evidence channel : channels) {
    double previous = -1;
    for (double x = 0.0; x <= 1.0; x += 0.1) {
      EvidenceSummary ev = WithEvidence(
          {{kEvPersonName, 0.5}, {kEvPersonEmail, 0.5}});
      ev.Offer(channel, x);
      const double s = sim.Compute(ev);
      EXPECT_GE(s, previous) << "channel " << channel << " at " << x;
      previous = s;
    }
  }
}

// ---- Article similarity ---------------------------------------------------------

TEST(ArticleSimilarityTest, TitleRequired) {
  ArticleSimilarity sim(Params());
  EvidenceSummary ev = WithEvidence({{kEvArticleYear, 1.0},
                                     {kEvArticlePages, 1.0}});
  EXPECT_DOUBLE_EQ(sim.Compute(ev), 0.0);
}

TEST(ArticleSimilarityTest, IdenticalTitleAloneMerges) {
  ArticleSimilarity sim(Params());
  EXPECT_GE(sim.Compute(WithEvidence({{kEvArticleTitle, 1.0}})),
            Params().merge_threshold);
}

TEST(ArticleSimilarityTest, AuxEvidenceLiftsNoisyTitle) {
  ArticleSimilarity sim(Params());
  const double alone = sim.Compute(WithEvidence({{kEvArticleTitle, 0.85}}));
  const double supported = sim.Compute(
      WithEvidence({{kEvArticleTitle, 0.85},
                    {kEvArticleAuthors, 1.0},
                    {kEvArticleVenue, 1.0},
                    {kEvArticlePages, 1.0}}));
  EXPECT_GT(supported, alone);
  EXPECT_GE(supported, Params().merge_threshold);
}

TEST(ArticleSimilarityTest, ConflictingAuxLowersScore) {
  ArticleSimilarity sim(Params());
  const double match = sim.Compute(
      WithEvidence({{kEvArticleTitle, 0.9}, {kEvArticleYear, 1.0}}));
  const double clash = sim.Compute(
      WithEvidence({{kEvArticleTitle, 0.9}, {kEvArticleYear, 0.0}}));
  EXPECT_GT(match, clash);
}

// ---- Venue similarity -----------------------------------------------------------

TEST(VenueSimilarityTest, NameRequired) {
  VenueSimilarity sim(Params());
  EXPECT_DOUBLE_EQ(sim.Compute(WithEvidence({{kEvVenueYear, 1.0}})), 0.0);
}

TEST(VenueSimilarityTest, ExactNameMergesAlone) {
  VenueSimilarity sim(Params());
  EXPECT_GE(sim.Compute(WithEvidence({{kEvVenueName, 1.0}})),
            Params().merge_threshold);
}

TEST(VenueSimilarityTest, ArticlesBridgeDissimilarNames) {
  VenueSimilarity sim(Params());
  // Venue t_rv is 0.1 and beta is 0.2: weak name evidence plus a few
  // merged articles crosses the merge threshold (the SIGMOD example).
  EvidenceSummary ev = WithEvidence({{kEvVenueName, 0.3}});
  EXPECT_LT(sim.Compute(ev), Params().merge_threshold);
  ev.strong_merged = 3;
  EXPECT_GE(sim.Compute(ev), Params().merge_threshold);
}

TEST(VenueSimilarityTest, BelowTrvGetsNoArticleBoost) {
  VenueSimilarity sim(Params());
  EvidenceSummary ev = WithEvidence({{kEvVenueName, 0.05}});
  ev.strong_merged = 10;
  EXPECT_LT(sim.Compute(ev), 0.1);
}

// ---- Factory ----------------------------------------------------------------------

TEST(ClassSimilarityFactoryTest, BuildsAllKnownClasses) {
  EXPECT_NE(MakeClassSimilarity("Person", Params()), nullptr);
  EXPECT_NE(MakeClassSimilarity("Article", Params()), nullptr);
  EXPECT_NE(MakeClassSimilarity("Venue", Params()), nullptr);
}

// ---- Comparators (policy wrappers) --------------------------------------------------

TEST(ComparatorsTest, AbbreviatedNamesAreCapped) {
  EXPECT_LE(PersonNameFieldSimilarity("Wong, E.", "Eugene Wong"),
            kAbbreviatedNameCap);
  // Byte-identical abbreviated strings are equal attribute values and may
  // merge on their own (above the 0.85 merge threshold)...
  EXPECT_DOUBLE_EQ(PersonNameFieldSimilarity("Wong, E.", "Wong, E."),
                   kEqualAbbreviatedNameSim);
  // ...but identical bare first names / nicknames stay capped.
  EXPECT_LE(PersonNameFieldSimilarity("mike", "mike"), kAbbreviatedNameCap);
  EXPECT_DOUBLE_EQ(
      PersonNameFieldSimilarity("Eugene Wong", "Eugene Wong"), 1.0);
}

TEST(ComparatorsTest, AllBoundedInUnitInterval) {
  const std::pair<std::string, std::string> pairs[] = {
      {"Eugene Wong", "Wong, E."},
      {"a@b.c", "x@y.z"},
      {"SIGMOD", "ACM Conference on Management of Data"},
      {"169-180", "pp. 169"},
      {"1978", "2004"},
      {"", ""},
  };
  for (const auto& [a, b] : pairs) {
    for (double sim : {PersonNameFieldSimilarity(a, b),
                       EmailFieldSimilarity(a, b),
                       TitleFieldSimilarity(a, b),
                       VenueNameFieldSimilarity(a, b),
                       YearFieldSimilarity(a, b), PagesFieldSimilarity(a, b),
                       LocationFieldSimilarity(a, b)}) {
      EXPECT_GE(sim, 0.0);
      EXPECT_LE(sim, 1.0);
    }
  }
}

}  // namespace
}  // namespace recon
