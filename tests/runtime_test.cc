// Tests for the parallel execution runtime (src/runtime/) and for the
// end-to-end guarantee it must uphold: reconciliation output is identical
// for every thread count. Registered with the ctest label `tsan` so the
// whole file can run under ThreadSanitizer (-DRECON_SANITIZE=thread).

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/candidates.h"
#include "core/reconciler.h"
#include "core/schema_binding.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace recon {
namespace {

// ---- Thread pool -----------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  runtime::ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  // The destructor drains the queues before joining; nothing to wait on
  // here beyond scope exit.
  while (ran.load() < 1000) {
    if (!pool.RunOneTask()) std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    runtime::ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // Destructor must run all 500 before joining.
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPoolTest, StartupShutdownUnderContention) {
  // Many short-lived pools, each bombarded from several submitter threads,
  // exercise the sleep/wake and shutdown paths.
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    {
      runtime::ThreadPool pool(3);
      std::vector<std::thread> submitters;
      for (int s = 0; s < 3; ++s) {
        submitters.emplace_back([&pool, &ran] {
          for (int i = 0; i < 50; ++i) {
            pool.Submit([&ran] { ran.fetch_add(1); });
          }
        });
      }
      for (std::thread& submitter : submitters) submitter.join();
    }
    EXPECT_EQ(ran.load(), 150);
  }
}

TEST(ThreadPoolTest, ExternalThreadCanSteal) {
  runtime::ThreadPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  // The external caller competes with the single worker for the tasks.
  while (ran.load() < 100) {
    if (!pool.RunOneTask()) std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 100);
}

// ---- ParallelFor / ParallelReduce -----------------------------------------

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  for (const int threads : {1, 2, 4, 8}) {
    for (const int64_t grain : {0, 1, 3, 1000}) {
      std::vector<std::atomic<int>> hits(257);
      for (auto& hit : hits) hit.store(0);
      runtime::ParallelFor(threads, 0, 257, grain,
                           [&](int64_t i) { hits[i].fetch_add(1); });
      for (size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                     << threads << " grain " << grain;
      }
    }
  }
}

TEST(ParallelForTest, EmptyAndTinyRanges) {
  std::atomic<int> hits{0};
  runtime::ParallelFor(4, 0, 0, 8, [&](int64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 0);
  runtime::ParallelFor(4, 5, 5, 8, [&](int64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 0);
  runtime::ParallelFor(4, 7, 3, 8, [&](int64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 0) << "reversed range must be empty";
  // Range smaller than one grain: everything lands in block 0, lane 0.
  std::vector<int> lanes;
  runtime::ParallelForBlocked(8, 0, 3, 100,
                              [&](const runtime::Block& block) {
                                lanes.push_back(static_cast<int>(block.lane));
                              });
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0], 0);
}

TEST(ParallelForTest, NonZeroBeginAndUnevenGrain) {
  std::vector<std::atomic<int>> hits(100);
  for (auto& hit : hits) hit.store(0);
  runtime::ParallelFor(3, 10, 100, 7,
                       [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(hits[i].load(), i >= 10 ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelForTest, ExceptionPropagatesAndPoolSurvives) {
  for (const int threads : {1, 4}) {
    EXPECT_THROW(
        runtime::ParallelFor(threads, 0, 1000, 1,
                             [](int64_t i) {
                               if (i == 417) {
                                 throw std::runtime_error("boom");
                               }
                             }),
        std::runtime_error)
        << "threads " << threads;
  }
  // The shared pool must still work after a cancelled loop.
  std::atomic<int64_t> sum{0};
  runtime::ParallelFor(4, 0, 100, 1, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ParallelForTest, NestedLoopsDoNotDeadlock) {
  // More lanes than pool workers at every level; the waiting threads must
  // help drain instead of blocking.
  std::atomic<int> hits{0};
  runtime::ParallelFor(8, 0, 8, 1, [&](int64_t) {
    runtime::ParallelFor(8, 0, 16, 1, [&](int64_t) {
      runtime::ParallelFor(4, 0, 4, 1, [&](int64_t) { hits.fetch_add(1); });
    });
  });
  EXPECT_EQ(hits.load(), 8 * 16 * 4);
}

TEST(ParallelReduceTest, DeterministicAcrossThreadCounts) {
  // Doubles chosen so that fold order matters; block-ordered reduction
  // must give bit-identical results for every thread count.
  std::vector<double> values(10000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto sum_with = [&](int threads) {
    return runtime::ParallelReduce<double>(
        threads, 0, static_cast<int64_t>(values.size()), 64, 0.0,
        [&](const runtime::Block& block) {
          double acc = 0.0;
          for (int64_t i = block.begin; i < block.end; ++i) acc += values[i];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(4));
  EXPECT_EQ(serial, sum_with(8));
}

TEST(ShardedCollectorTest, DrainEqualsSerialOrder) {
  const runtime::BlockPlan plan = runtime::PlanBlocks(4, 0, 1000, 13);
  runtime::ShardedCollector<int> collector(plan);
  runtime::ParallelForBlocked(4, 0, 1000, plan.grain,
                              [&](const runtime::Block& block) {
                                for (int64_t i = block.begin; i < block.end;
                                     ++i) {
                                  collector.shard(block.index).push_back(
                                      static_cast<int>(i));
                                }
                              });
  std::vector<int> expected(1000);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(collector.Drain(), expected);
}

// ---- End-to-end determinism ------------------------------------------------

Dataset SmallPim() {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.05);
  return datagen::GeneratePim(config);
}

TEST(RuntimeIntegrationTest, CandidatesIdenticalAcrossThreadCounts) {
  const Dataset dataset = SmallPim();
  const SchemaBinding binding = SchemaBinding::Resolve(dataset.schema());
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.num_threads = 1;
  const CandidateList serial = GenerateCandidates(dataset, binding, options);
  EXPECT_FALSE(serial.empty());
  for (const int threads : {2, 8}) {
    options.num_threads = threads;
    EXPECT_EQ(GenerateCandidates(dataset, binding, options), serial)
        << "threads " << threads;
  }
  // Canopies run their own feature-extraction parallelism.
  options.use_canopies = true;
  options.num_threads = 1;
  const CandidateList canopy_serial =
      GenerateCandidates(dataset, binding, options);
  options.num_threads = 4;
  EXPECT_EQ(GenerateCandidates(dataset, binding, options), canopy_serial);
}

TEST(RuntimeIntegrationTest, ReconcilerOutputIdenticalAcrossThreadCounts) {
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.num_threads = 1;
  const ReconcileResult serial = Reconciler(options).Run(dataset);

  for (const int threads : {2, 8}) {
    options.num_threads = threads;
    const ReconcileResult parallel = Reconciler(options).Run(dataset);
    // Byte-identical partitions and identical merge bookkeeping.
    EXPECT_EQ(parallel.cluster, serial.cluster) << "threads " << threads;
    EXPECT_EQ(parallel.merged_pairs, serial.merged_pairs)
        << "threads " << threads;
    EXPECT_EQ(parallel.stats.num_merges, serial.stats.num_merges);
    EXPECT_EQ(parallel.stats.num_candidates, serial.stats.num_candidates);
    EXPECT_EQ(parallel.stats.num_nodes, serial.stats.num_nodes);
    EXPECT_EQ(parallel.stats.num_edges, serial.stats.num_edges);
    for (int c = 0; c < dataset.schema().num_classes(); ++c) {
      EXPECT_EQ(parallel.PartitionsOfClass(dataset, c),
                serial.PartitionsOfClass(dataset, c))
          << "class " << c << " threads " << threads;
    }
  }
}

TEST(RuntimeIntegrationTest, MetricsIdenticalAcrossThreadCounts) {
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  const ReconcileResult result = Reconciler(options).Run(dataset);
  for (int c = 0; c < dataset.schema().num_classes(); ++c) {
    const PairMetrics serial = EvaluateClass(dataset, result.cluster, c, 1);
    for (const int threads : {2, 8}) {
      const PairMetrics parallel =
          EvaluateClass(dataset, result.cluster, c, threads);
      EXPECT_EQ(parallel.precision, serial.precision);
      EXPECT_EQ(parallel.recall, serial.recall);
      EXPECT_EQ(parallel.f1, serial.f1);
      EXPECT_EQ(parallel.true_pairs, serial.true_pairs);
      EXPECT_EQ(parallel.predicted_pairs, serial.predicted_pairs);
      EXPECT_EQ(parallel.correct_pairs, serial.correct_pairs);
      EXPECT_EQ(parallel.num_partitions, serial.num_partitions);
      EXPECT_EQ(parallel.num_entities, serial.num_entities);
    }
  }
}

TEST(RuntimeIntegrationTest, ZeroMeansHardwareConcurrency) {
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.num_threads = 1;
  const std::vector<int> serial = Reconciler(options).Run(dataset).cluster;
  options.num_threads = 0;  // All hardware threads.
  EXPECT_EQ(Reconciler(options).Run(dataset).cluster, serial);
}

}  // namespace
}  // namespace recon
