#include <gtest/gtest.h>

#include "core/tuner.h"
#include "datagen/pim_generator.h"

namespace recon {
namespace {

Dataset SmallTrainSet() {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.02);
  config.seed = 91;
  return datagen::GeneratePim(config);
}

TEST(TunerTest, NeverWorseThanInitial) {
  const Dataset train = SmallTrainSet();
  TunerOptions options;
  options.iterations = 6;
  const TunerReport report =
      TuneParams(train, ReconcilerOptions::DepGraph(), options);
  EXPECT_GE(report.best_f1, report.initial_f1);
  EXPECT_EQ(report.history.size(), 6u);
}

TEST(TunerTest, HistoryIsMonotone) {
  const Dataset train = SmallTrainSet();
  TunerOptions options;
  options.iterations = 8;
  const TunerReport report =
      TuneParams(train, ReconcilerOptions::DepGraph(), options);
  for (size_t i = 1; i < report.history.size(); ++i) {
    EXPECT_GE(report.history[i], report.history[i - 1]);
  }
  EXPECT_DOUBLE_EQ(report.history.back(), report.best_f1);
}

TEST(TunerTest, DeterministicForSeed) {
  const Dataset train = SmallTrainSet();
  TunerOptions options;
  options.iterations = 5;
  options.seed = 7;
  const TunerReport a =
      TuneParams(train, ReconcilerOptions::DepGraph(), options);
  const TunerReport b =
      TuneParams(train, ReconcilerOptions::DepGraph(), options);
  EXPECT_EQ(a.history, b.history);
  EXPECT_DOUBLE_EQ(a.best_f1, b.best_f1);
}

TEST(TunerTest, RecoversFromDamagedParams) {
  // Start from deliberately bad weights; tuning must claw back quality.
  const Dataset train = SmallTrainSet();
  ReconcilerOptions damaged = ReconcilerOptions::DepGraph();
  damaged.params.person_w_name_with_email = 0.2;
  damaged.params.person_w_email_with_name = 0.2;
  damaged.params.person_ne_only_scale = 0.5;

  TunerOptions options;
  options.iterations = 20;
  options.seed = 13;
  const TunerReport report = TuneParams(train, damaged, options);
  EXPECT_GT(report.best_f1, report.initial_f1);
}

TEST(TunerTest, AbortsOnUnknownClass) {
  const Dataset train = SmallTrainSet();
  TunerOptions options;
  options.target_class = "Spaceship";
  EXPECT_DEATH(TuneParams(train, ReconcilerOptions::DepGraph(), options),
               "Unknown tuning class");
}

}  // namespace
}  // namespace recon
