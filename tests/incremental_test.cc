// Tests for incremental reconciliation (paper §7 future work) and for the
// key-attribute pre-merge optimization (§3.4).

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/premerge.h"
#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "model/subset.h"

namespace recon {
namespace {

datagen::PimConfig SmallPim(uint64_t seed) {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.04);
  config.seed = seed;
  return config;
}

// ---- Pre-merge --------------------------------------------------------------

TEST(PremergeTest, GroupsEqualEmails) {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  const int email = data.schema().RequireAttribute(person, "email");
  const int name = data.schema().RequireAttribute(person, "name");
  const RefId a = data.NewReference(person, 0);
  data.mutable_reference(a).AddAtomicValue(email, "x@y.edu");
  data.mutable_reference(a).AddAtomicValue(name, "Xavier Young");
  const RefId b = data.NewReference(person, 0);
  data.mutable_reference(b).AddAtomicValue(email, "X@Y.EDU");  // Case diff.
  data.mutable_reference(b).AddAtomicValue(name, "X. Young");
  const RefId c = data.NewReference(person, 1);
  data.mutable_reference(c).AddAtomicValue(email, "z@y.edu");

  const SchemaBinding binding = SchemaBinding::Resolve(data.schema());
  const PremergeResult pre = PremergeEqualEmails(data, binding);
  EXPECT_EQ(pre.condensed.num_references(), 2);
  EXPECT_EQ(pre.condensed_of[a], pre.condensed_of[b]);
  EXPECT_NE(pre.condensed_of[a], pre.condensed_of[c]);
  // Values pooled.
  const Reference& merged = pre.condensed.reference(pre.condensed_of[a]);
  EXPECT_EQ(merged.atomic_values(name).size(), 2u);
  EXPECT_EQ(merged.atomic_values(email).size(), 2u);  // Case variants kept.
}

TEST(PremergeTest, RemapsAssociationsAndDropsSelfLinks) {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  const int email = data.schema().RequireAttribute(person, "email");
  const int contact = data.schema().RequireAttribute(person, "emailContact");
  const RefId a = data.NewReference(person, 0);
  data.mutable_reference(a).AddAtomicValue(email, "a@s.edu");
  const RefId b = data.NewReference(person, 0);
  data.mutable_reference(b).AddAtomicValue(email, "a@s.edu");
  const RefId c = data.NewReference(person, 1);
  data.mutable_reference(c).AddAtomicValue(email, "c@s.edu");
  data.mutable_reference(a).AddAssociation(contact, c);
  data.mutable_reference(c).AddAssociation(contact, b);
  data.mutable_reference(a).AddAssociation(contact, b);  // Becomes self.

  const SchemaBinding binding = SchemaBinding::Resolve(data.schema());
  const PremergeResult pre = PremergeEqualEmails(data, binding);
  const Reference& ab = pre.condensed.reference(pre.condensed_of[a]);
  const Reference& cc = pre.condensed.reference(pre.condensed_of[c]);
  EXPECT_EQ(ab.associations(contact),
            (std::vector<RefId>{pre.condensed_of[c]}));
  EXPECT_EQ(cc.associations(contact),
            (std::vector<RefId>{pre.condensed_of[a]}));
}

TEST(PremergeTest, ExpandClustersIsCanonical) {
  const Dataset data = datagen::GeneratePim(SmallPim(71));
  const SchemaBinding binding = SchemaBinding::Resolve(data.schema());
  const PremergeResult pre = PremergeEqualEmails(data, binding);
  ASSERT_LT(pre.condensed.num_references(), data.num_references());

  // Identity clustering over the condensed space expands to the premerge
  // partition over the original space.
  std::vector<int> identity(pre.condensed.num_references());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = static_cast<int>(i);
  const std::vector<int> expanded = ExpandClusters(pre, identity);
  for (RefId id = 0; id < data.num_references(); ++id) {
    EXPECT_EQ(expanded[expanded[id]], expanded[id]);
    EXPECT_EQ(pre.condensed_of[expanded[id]], pre.condensed_of[id]);
  }
}

TEST(PremergeTest, PremergeDoesNotChangeQualityMuch) {
  // The key attribute would merge those pairs anyway; pre-merging is an
  // optimization, not a semantic change. Allow small drift (order effects).
  const Dataset data = datagen::GeneratePim(SmallPim(72));
  const int person = data.schema().RequireClass("Person");

  ReconcilerOptions with = ReconcilerOptions::DepGraph();
  ReconcilerOptions without = ReconcilerOptions::DepGraph();
  without.premerge_equal_emails = false;
  const PairMetrics m_with =
      EvaluateClass(data, Reconciler(with).Run(data).cluster, person);
  const PairMetrics m_without =
      EvaluateClass(data, Reconciler(without).Run(data).cluster, person);
  EXPECT_NEAR(m_with.f1, m_without.f1, 0.05);
  EXPECT_GE(m_with.recall, m_without.recall - 0.03);
}

// ---- Incremental reconciliation -----------------------------------------------

TEST(IncrementalTest, MatchesBatchOnWholeDataset) {
  // Feeding the whole dataset as one batch must match the batch
  // reconciler's partition (premerge is a batch-only optimization, so
  // compare against a batch run without it).
  const Dataset data = datagen::GeneratePim(SmallPim(73));
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;
  const ReconcileResult batch = Reconciler(options).Run(data);

  IncrementalReconciler incremental(data, options);
  const std::vector<int>& clusters = incremental.clusters();

  std::map<int, int> mapping;
  for (RefId id = 0; id < data.num_references(); ++id) {
    auto [it, inserted] = mapping.try_emplace(batch.cluster[id], clusters[id]);
    EXPECT_EQ(it->second, clusters[id]) << "ref " << id;
  }
}

TEST(IncrementalTest, AddingReferencesExtendsClusters) {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  const int name = data.schema().RequireAttribute(person, "name");
  const int email = data.schema().RequireAttribute(person, "email");

  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;
  IncrementalReconciler reconciler(std::move(data), options);

  auto add_person = [&](const std::string& n, const std::string& e) {
    Reference ref(person, 4);
    if (!n.empty()) ref.AddAtomicValue(name, n);
    if (!e.empty()) ref.AddAtomicValue(email, e);
    return reconciler.AddReference(std::move(ref));
  };

  const RefId p1 = add_person("Eugene Wong", "eugene@berkeley.edu");
  const RefId p2 = add_person("Eugene Wong", "");
  EXPECT_EQ(reconciler.clusters()[p1], reconciler.clusters()[p2]);

  // A later batch: the same email as p1 must join the existing cluster.
  const RefId p3 = add_person("", "eugene@berkeley.edu");
  const RefId p4 = add_person("Robert Epstein", "");
  EXPECT_EQ(reconciler.clusters()[p3], reconciler.clusters()[p1]);
  EXPECT_NE(reconciler.clusters()[p4], reconciler.clusters()[p1]);
}

TEST(IncrementalTest, DecisionsAreMonotone) {
  // Previously merged pairs stay merged after any number of insertions.
  const Dataset data = datagen::GeneratePim(SmallPim(74));
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;
  IncrementalReconciler reconciler(data, options);
  const std::vector<int> before = reconciler.clusters();

  const int person = data.schema().RequireClass("Person");
  const int name = data.schema().RequireAttribute(person, "name");
  for (int i = 0; i < 10; ++i) {
    Reference ref(person, 4);
    ref.AddAtomicValue(name, "Zebulon Quixote");
    reconciler.AddReference(std::move(ref));
  }
  const std::vector<int>& after = reconciler.clusters();
  for (RefId id = 0; id < data.num_references(); ++id) {
    for (RefId other = id + 1; other < data.num_references(); ++other) {
      if (before[id] == before[other]) {
        EXPECT_EQ(after[id], after[other])
            << "pair (" << id << "," << other << ") was unmerged";
      }
    }
  }
}

TEST(IncrementalTest, BatchedInsertionApproximatesBatchQuality) {
  const Dataset full = datagen::GeneratePim(SmallPim(75));
  const int person = full.schema().RequireClass("Person");

  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;
  const PairMetrics batch =
      EvaluateClass(full, Reconciler(options).Run(full).cluster, person);

  // Split: first 60% of references, then the rest in one more batch.
  // (Keep association targets valid: links in the PIM generator always
  // point within the same extraction unit, and references are ordered by
  // unit, so a prefix cut is safe apart from a few dangling links we
  // filter.)
  const RefId cut = full.num_references() * 6 / 10;
  const Dataset head =
      FilterDataset(full, [&](RefId id) { return id < cut; });
  IncrementalReconciler reconciler(head, options);
  for (RefId id = cut; id < full.num_references(); ++id) {
    const Reference& ref = full.reference(id);
    Reference copy(ref.class_id(), ref.num_attributes());
    for (int attr = 0; attr < ref.num_attributes(); ++attr) {
      for (const auto& v : ref.atomic_values(attr)) {
        copy.AddAtomicValue(attr, v);
      }
      for (const RefId t : ref.associations(attr)) {
        if (t < full.num_references()) copy.AddAssociation(attr, t);
      }
    }
    reconciler.AddReference(std::move(copy), full.gold_entity(id),
                            full.provenance(id));
  }
  // Evaluate against the full dataset's gold labels.
  const std::vector<int>& clusters = reconciler.clusters();
  const PairMetrics incremental =
      EvaluateClass(reconciler.dataset(), clusters, person);

  EXPECT_GE(incremental.recall, batch.recall - 0.08);
  EXPECT_GE(incremental.precision, batch.precision - 0.05);
}

TEST(IncrementalTest, FlushIsIdempotent) {
  const Dataset data = datagen::GeneratePim(SmallPim(76));
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;
  IncrementalReconciler reconciler(data, options);
  reconciler.Flush();
  const std::vector<int> first = reconciler.clusters();
  reconciler.Flush();
  reconciler.Flush();
  EXPECT_EQ(reconciler.clusters(), first);
}

TEST(IncrementalTest, StatsAccumulate) {
  const Dataset data = datagen::GeneratePim(SmallPim(77));
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;
  IncrementalReconciler reconciler(data, options);
  const ReconcileResult result = reconciler.result();
  EXPECT_GT(result.stats.num_nodes, 0);
  EXPECT_GT(result.stats.num_merges, 0);
  EXPECT_FALSE(result.merged_pairs.empty());
}

}  // namespace
}  // namespace recon
