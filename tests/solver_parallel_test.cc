// The parallel wavefront solver (ReconcilerOptions::parallel_fixed_point)
// must be undetectable in the output: at 1/2/4/8 threads the partitions,
// merged pairs, and every non-timing stat — including the in-edge scan and
// cache counters — are byte-identical to the sequential drain, across
// datasets, constraints on/off, enrichment on/off, and evidence_cache
// on/off. The wavefront's own counters (rounds, hits, serial re-scores,
// commit waves/regions/deferrals) must themselves be deterministic across
// thread counts: hit-or-miss, region boundaries, and wave membership are
// decided by generation stamps and the claim table along the canonical
// commit order, never by scheduling. Runs under ThreadSanitizer via the
// ctest `tsan` label.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "model/dataset.h"

namespace recon {
namespace {

Dataset SmallPim() {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.10);
  return datagen::GeneratePim(config);
}

Dataset SmallCora() {
  datagen::CoraConfig config;
  config.num_papers = 30;
  config.num_citations = 300;
  config.num_authors = 60;
  config.num_venue_series = 12;
  return datagen::GenerateCora(config);
}

/// Everything observable except wall times and the wavefront's own
/// counters must match the sequential reference exactly.
void ExpectSameOutput(const Dataset& dataset, const ReconcileResult& serial,
                      const ReconcileResult& parallel) {
  EXPECT_EQ(serial.cluster, parallel.cluster);
  EXPECT_EQ(serial.merged_pairs, parallel.merged_pairs);
  EXPECT_EQ(serial.stats.num_candidates, parallel.stats.num_candidates);
  EXPECT_EQ(serial.stats.num_nodes, parallel.stats.num_nodes);
  EXPECT_EQ(serial.stats.num_live_nodes, parallel.stats.num_live_nodes);
  EXPECT_EQ(serial.stats.num_edges, parallel.stats.num_edges);
  EXPECT_EQ(serial.stats.num_recomputations,
            parallel.stats.num_recomputations);
  EXPECT_EQ(serial.stats.num_merges, parallel.stats.num_merges);
  EXPECT_EQ(serial.stats.num_folds, parallel.stats.num_folds);
  // The scan accounting must be indistinguishable too: a committed
  // parallel score carries exactly the stat deltas the serial computation
  // would have recorded.
  EXPECT_EQ(serial.stats.num_inedge_scans, parallel.stats.num_inedge_scans);
  EXPECT_EQ(serial.stats.num_inedge_scans_avoided,
            parallel.stats.num_inedge_scans_avoided);
  EXPECT_EQ(serial.stats.num_cache_rebuilds,
            parallel.stats.num_cache_rebuilds);
  EXPECT_EQ(serial.stats.num_delta_pushes, parallel.stats.num_delta_pushes);

  for (int c = 0; c < dataset.schema().num_classes(); ++c) {
    const PairMetrics m_serial = EvaluateClass(dataset, serial.cluster, c);
    const PairMetrics m_parallel =
        EvaluateClass(dataset, parallel.cluster, c);
    EXPECT_EQ(m_serial.precision, m_parallel.precision);
    EXPECT_EQ(m_serial.recall, m_parallel.recall);
    EXPECT_EQ(m_serial.f1, m_parallel.f1);
    EXPECT_EQ(m_serial.num_partitions, m_parallel.num_partitions);
  }
}

void SweepDataset(const Dataset& dataset, const std::string& dataset_name) {
  for (const bool evidence_cache : {true, false}) {
    for (const bool constraints : {true, false}) {
      for (const bool enrichment : {true, false}) {
        ReconcilerOptions options = ReconcilerOptions::DepGraph();
        options.evidence_cache = evidence_cache;
        options.constraints = constraints;
        options.enrichment = enrichment;
        // Force wavefront rounds even on these deliberately small graphs.
        options.parallel_frontier_min = 4;

        // Reference: the plain sequential drain, wavefront off entirely.
        options.num_threads = 1;
        options.parallel_fixed_point = false;
        const ReconcileResult serial = Reconciler(options).Run(dataset);
        EXPECT_EQ(serial.stats.num_solver_rounds, 0);
        EXPECT_EQ(serial.stats.num_parallel_scored, 0);
        options.parallel_fixed_point = true;

        ReconcileStats first_parallel;
        bool have_first = false;
        for (const int threads : {1, 2, 4, 8}) {
          SCOPED_TRACE(dataset_name + " threads=" + std::to_string(threads) +
                       " cache=" + std::to_string(evidence_cache) +
                       " constraints=" + std::to_string(constraints) +
                       " enrichment=" + std::to_string(enrichment));
          options.num_threads = threads;
          const ReconcileResult parallel = Reconciler(options).Run(dataset);
          ExpectSameOutput(dataset, serial, parallel);

          // The rounds must actually have run, and every frontier node
          // was either committed from its parallel score or re-scored.
          EXPECT_GT(parallel.stats.num_solver_rounds, 0);
          EXPECT_EQ(parallel.stats.num_score_hits +
                        parallel.stats.num_serial_rescores +
                        parallel.stats.num_score_discards,
                    parallel.stats.num_parallel_scored);
          EXPECT_EQ(static_cast<int64_t>(parallel.stats.solve_rounds.size()),
                    parallel.stats.num_solver_rounds);

          // Hit-or-miss, region boundaries, and wave membership are a
          // function of the canonical commit order and the claim table,
          // not of scheduling: the counters agree at every thread count.
          if (have_first) {
            EXPECT_EQ(first_parallel.num_solver_rounds,
                      parallel.stats.num_solver_rounds);
            EXPECT_EQ(first_parallel.num_parallel_scored,
                      parallel.stats.num_parallel_scored);
            EXPECT_EQ(first_parallel.num_score_hits,
                      parallel.stats.num_score_hits);
            EXPECT_EQ(first_parallel.num_serial_rescores,
                      parallel.stats.num_serial_rescores);
            EXPECT_EQ(first_parallel.num_score_discards,
                      parallel.stats.num_score_discards);
            EXPECT_EQ(first_parallel.num_commit_waves,
                      parallel.stats.num_commit_waves);
            EXPECT_EQ(first_parallel.num_commit_regions,
                      parallel.stats.num_commit_regions);
            EXPECT_EQ(first_parallel.num_wave_commits,
                      parallel.stats.num_wave_commits);
            EXPECT_EQ(first_parallel.num_commit_deferrals,
                      parallel.stats.num_commit_deferrals);
          }
          first_parallel = parallel.stats;
          have_first = true;
        }
      }
    }
  }
}

TEST(SolverParallelTest, PimSweep) { SweepDataset(SmallPim(), "PIM-A"); }

TEST(SolverParallelTest, CoraSweep) { SweepDataset(SmallCora(), "Cora"); }

TEST(SolverParallelTest, GateFallsBackToSequential) {
  // parallel_fixed_point=false is the only gate: it disables rounds at any
  // thread count. One thread with the gate open runs the same wavefront
  // schedule inline — rounds engage, phase timers tick, and the output is
  // byte-identical to the plain drain (the perf bench's threads=1 row
  // measures the identical code path as threads=N).
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.num_threads = 4;
  options.parallel_frontier_min = 4;
  options.parallel_fixed_point = false;
  const ReconcileResult gated = Reconciler(options).Run(dataset);
  EXPECT_EQ(gated.stats.num_solver_rounds, 0);
  EXPECT_EQ(gated.stats.num_parallel_scored, 0);
  EXPECT_EQ(gated.stats.solve_score_seconds, 0.0);

  options.parallel_fixed_point = true;
  options.num_threads = 1;
  const ReconcileResult single = Reconciler(options).Run(dataset);
  EXPECT_GT(single.stats.num_solver_rounds, 0);
  EXPECT_GT(single.stats.num_parallel_scored, 0);
  EXPECT_GT(single.stats.solve_score_seconds, 0.0);
  EXPECT_EQ(gated.cluster, single.cluster);
  EXPECT_EQ(gated.merged_pairs, single.merged_pairs);
  EXPECT_EQ(gated.stats.num_recomputations, single.stats.num_recomputations);
}

TEST(SolverParallelTest, WavefrontEngagesAtDefaultFloor) {
  // At the *default* frontier floor (no test-only overrides) a realistic
  // workload must actually trigger rounds, and the parallel phase must
  // carry a substantial share of the committed scores. Note "substantial",
  // not "most": the first round commits the bulk of the merges, and every
  // merge bumps the generations of dependents sitting later in the same
  // frontier, so a sizable serial-rescore share is inherent to the
  // workload shape, not a regression.
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.num_threads = 4;
  const ReconcileResult result = Reconciler(options).Run(dataset);
  ASSERT_GT(result.stats.num_solver_rounds, 0);
  ASSERT_GT(result.stats.num_parallel_scored, 0);
  EXPECT_EQ(result.stats.num_score_hits + result.stats.num_serial_rescores +
                result.stats.num_score_discards,
            result.stats.num_parallel_scored);
  // At least a quarter of non-discarded commits came from parallel scores.
  EXPECT_GE(4 * result.stats.num_score_hits,
            result.stats.num_score_hits + result.stats.num_serial_rescores);
}

TEST(SolverParallelTest, PerRoundStatsAddUp) {
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.num_threads = 4;
  options.parallel_frontier_min = 4;
  const ReconcileResult result = Reconciler(options).Run(dataset);
  int64_t frontier = 0, hits = 0, rescores = 0, discards = 0;
  for (const SolveRoundStat& round : result.stats.solve_rounds) {
    frontier += round.frontier;
    hits += round.score_hits;
    rescores += round.serial_rescores;
    discards += round.score_discards;
    EXPECT_GE(round.score_seconds, 0.0);
    EXPECT_GE(round.commit_seconds, 0.0);
    EXPECT_EQ(round.frontier, round.score_hits + round.serial_rescores +
                                  round.score_discards);
  }
  EXPECT_EQ(frontier, result.stats.num_parallel_scored);
  EXPECT_EQ(hits, result.stats.num_score_hits);
  EXPECT_EQ(rescores, result.stats.num_serial_rescores);
  EXPECT_EQ(discards, result.stats.num_score_discards);
}

TEST(SolverParallelTest, IncrementalBatchesMatch) {
  // Incremental reconciliation re-enters the solver after graph surgery;
  // generation stamps and wavefront rounds must keep batches identical.
  const Dataset dataset = SmallPim();
  std::vector<std::vector<int>> clusters;
  for (const int threads : {1, 4}) {
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.num_threads = threads;
    options.parallel_frontier_min = 4;
    IncrementalReconciler inc(Dataset(dataset.schema()), options);
    for (RefId id = 0; id < dataset.num_references(); ++id) {
      inc.AddReference(dataset.reference(id), /*gold_entity=*/-1,
                       dataset.provenance(id));
      if (id % 97 == 0) inc.Flush();
    }
    clusters.push_back(inc.clusters());
  }
  EXPECT_EQ(clusters[0], clusters[1]);
}

}  // namespace
}  // namespace recon
