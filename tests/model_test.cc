#include <gtest/gtest.h>

#include "model/dataset.h"
#include "model/reference.h"
#include "model/schema.h"
#include "model/subset.h"

namespace recon {
namespace {

TEST(SchemaTest, BuildAndLookup) {
  Schema schema;
  const int person = schema.AddClass("Person");
  const int name = schema.AddAtomicAttribute(person, "name");
  const int friend_attr =
      schema.AddAssociationAttribute(person, "friend", "Person");
  ASSERT_TRUE(schema.Finalize().ok());

  EXPECT_EQ(schema.num_classes(), 1);
  EXPECT_EQ(schema.FindClass("Person"), person);
  EXPECT_EQ(schema.FindClass("Nope"), -1);
  const ClassDef& def = schema.class_def(person);
  EXPECT_EQ(def.FindAttribute("name"), name);
  EXPECT_EQ(def.attributes[friend_attr].kind, AttrKind::kAssociation);
  EXPECT_EQ(def.attributes[friend_attr].target_class_id, person);
}

TEST(SchemaTest, FinalizeFailsOnUnknownTarget) {
  Schema schema;
  const int person = schema.AddClass("Person");
  schema.AddAssociationAttribute(person, "wrote", "Book");
  EXPECT_FALSE(schema.Finalize().ok());
}

TEST(SchemaTest, PimSchemaShape) {
  const Schema schema = BuildPimSchema();
  EXPECT_TRUE(schema.finalized());
  EXPECT_EQ(schema.num_classes(), 3);
  const int person = schema.RequireClass("Person");
  EXPECT_EQ(schema.class_def(person).num_attributes(), 4);
  const int article = schema.RequireClass("Article");
  const ClassDef& article_def = schema.class_def(article);
  const int authored = article_def.FindAttribute("authoredBy");
  EXPECT_EQ(article_def.attributes[authored].target_class_id, person);
}

TEST(SchemaTest, CoraSchemaShape) {
  const Schema schema = BuildCoraSchema();
  const int person = schema.RequireClass("Person");
  EXPECT_EQ(schema.class_def(person).FindAttribute("email"), -1);
  EXPECT_GE(schema.class_def(person).FindAttribute("coAuthor"), 0);
}

TEST(ReferenceTest, MultiValuedAtomicsDeduplicate) {
  Reference ref(0, 2);
  ref.AddAtomicValue(0, "a@x.com");
  ref.AddAtomicValue(0, "b@x.com");
  ref.AddAtomicValue(0, "a@x.com");
  ref.AddAtomicValue(0, "");  // Empty values ignored.
  EXPECT_EQ(ref.atomic_values(0).size(), 2u);
  EXPECT_EQ(ref.FirstValue(0), "a@x.com");
  EXPECT_EQ(ref.FirstValue(1), "");
}

TEST(ReferenceTest, AssociationsDeduplicate) {
  Reference ref(0, 1);
  ref.AddAssociation(0, 5);
  ref.AddAssociation(0, 5);
  ref.AddAssociation(0, 7);
  EXPECT_EQ(ref.associations(0).size(), 2u);
}

TEST(ReferenceTest, IsEmpty) {
  Reference ref(0, 2);
  EXPECT_TRUE(ref.IsEmpty());
  ref.AddAtomicValue(1, "x");
  EXPECT_FALSE(ref.IsEmpty());
}

TEST(DatasetTest, AddAndQuery) {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  const int article = data.schema().RequireClass("Article");
  const RefId p1 = data.NewReference(person, 0, Provenance::kEmail);
  const RefId p2 = data.NewReference(person, 0, Provenance::kBibtex);
  const RefId a1 = data.NewReference(article, 1);

  EXPECT_EQ(data.num_references(), 3);
  EXPECT_EQ(data.gold_entity(p1), 0);
  EXPECT_EQ(data.provenance(p2), Provenance::kBibtex);
  EXPECT_EQ(data.ReferencesOfClass(person), (std::vector<RefId>{p1, p2}));
  EXPECT_EQ(data.ReferencesOfClass(article), (std::vector<RefId>{a1}));
  EXPECT_EQ(data.NumEntitiesOfClass(person), 1);
  EXPECT_EQ(data.NumEntitiesOfClass(article), 1);
}

TEST(SubsetTest, FiltersAndRemapsAssociations) {
  Dataset data(BuildPimSchema());
  const int person = data.schema().RequireClass("Person");
  const int contact = data.schema().RequireAttribute(person, "emailContact");
  const int name = data.schema().RequireAttribute(person, "name");

  const RefId a = data.NewReference(person, 0, Provenance::kEmail);
  const RefId b = data.NewReference(person, 1, Provenance::kBibtex);
  const RefId c = data.NewReference(person, 2, Provenance::kEmail);
  data.mutable_reference(a).AddAtomicValue(name, "Alice");
  data.mutable_reference(a).AddAssociation(contact, b);
  data.mutable_reference(a).AddAssociation(contact, c);
  data.mutable_reference(c).AddAssociation(contact, a);

  const Dataset email_only = FilterDataset(data, [&](RefId id) {
    return data.provenance(id) == Provenance::kEmail;
  });
  ASSERT_EQ(email_only.num_references(), 2);
  // a -> 0, c -> 1 in the new dataset; the link a->b must be dropped.
  EXPECT_EQ(email_only.reference(0).atomic_values(name).size(), 1u);
  EXPECT_EQ(email_only.reference(0).associations(contact),
            (std::vector<RefId>{1}));
  EXPECT_EQ(email_only.reference(1).associations(contact),
            (std::vector<RefId>{0}));
  EXPECT_EQ(email_only.gold_entity(1), 2);
}

}  // namespace
}  // namespace recon
