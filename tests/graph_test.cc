#include <gtest/gtest.h>

#include "graph/dep_graph.h"
#include "graph/value_pool.h"
#include "sim/evidence.h"

namespace recon {
namespace {

TEST(ValuePoolTest, InternsPerDomain) {
  ValuePool pool;
  const ValueDomain names{0, 0};
  const ValueDomain emails{0, 1};
  const ValueId a = pool.Intern(names, "Eugene Wong");
  const ValueId b = pool.Intern(names, "Eugene Wong");
  const ValueId c = pool.Intern(emails, "Eugene Wong");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // Same string, different domain: different element.
  EXPECT_EQ(pool.StringOf(a), "Eugene Wong");
  EXPECT_EQ(pool.DomainOf(c), emails);
  EXPECT_EQ(pool.Find(names, "Eugene Wong"), a);
  EXPECT_EQ(pool.Find(names, "nobody"), kInvalidValue);
}

class DepGraphTest : public ::testing::Test {
 protected:
  DepGraphTest() : graph_(10) {}
  DependencyGraph graph_;
};

TEST_F(DepGraphTest, RefPairNodesAreUnique) {
  const NodeId m1 = graph_.AddRefPairNode(0, 1, 2);
  const NodeId m2 = graph_.AddRefPairNode(0, 2, 1);  // Same pair, swapped.
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(graph_.num_nodes(), 1);
  EXPECT_EQ(graph_.FindRefPair(1, 2), m1);
  EXPECT_EQ(graph_.FindRefPair(2, 1), m1);
  EXPECT_EQ(graph_.FindRefPair(1, 3), kInvalidNode);
  EXPECT_EQ(graph_.node(m1).a, 1);
  EXPECT_EQ(graph_.node(m1).b, 2);
}

TEST_F(DepGraphTest, ValuePairNodesKeepInitialState) {
  const NodeId n1 = graph_.AddValuePairNode(3, 4, 0.9, NodeState::kInactive);
  const NodeId n2 = graph_.AddValuePairNode(4, 3, 0.1, NodeState::kMerged);
  EXPECT_EQ(n1, n2);
  EXPECT_FLOAT_EQ(graph_.node(n1).sim, 0.9f);
  EXPECT_EQ(graph_.node(n1).state, NodeState::kInactive);
}

TEST_F(DepGraphTest, EdgesAreDirectedAndDeduplicated) {
  const NodeId m = graph_.AddRefPairNode(0, 1, 2);
  const NodeId n = graph_.AddValuePairNode(0, 1, 0.5, NodeState::kInactive);
  graph_.AddEdge(n, m, DependencyKind::kRealValued, kEvPersonName);
  graph_.AddEdge(n, m, DependencyKind::kRealValued, kEvPersonName);  // Dup.
  graph_.AddEdge(n, m, DependencyKind::kWeakBoolean, kEvPersonName);
  EXPECT_EQ(graph_.num_edges(), 2);
  EXPECT_EQ(graph_.out_edges(n).size(), 2u);
  EXPECT_EQ(graph_.in_edges(m).size(), 2u);
  EXPECT_EQ(graph_.in_edges(m)[0].node, n);
}

TEST_F(DepGraphTest, NodesOfRefTracksMembership) {
  const NodeId m1 = graph_.AddRefPairNode(0, 1, 2);
  const NodeId m2 = graph_.AddRefPairNode(0, 1, 3);
  const auto nodes = graph_.NodesOfRef(1);
  EXPECT_EQ(nodes.size(), 2u);
  ASSERT_EQ(graph_.NodesOfRef(2).size(), 1u);
  EXPECT_EQ(graph_.NodesOfRef(2)[0], m1);
  ASSERT_EQ(graph_.NodesOfRef(3).size(), 1u);
  EXPECT_EQ(graph_.NodesOfRef(3)[0], m2);
}

TEST_F(DepGraphTest, StaticRealKeepsMax) {
  const NodeId m = graph_.AddRefPairNode(0, 1, 2);
  graph_.AddStaticReal(m, kEvPersonName, 0.5);
  graph_.AddStaticReal(m, kEvPersonName, 0.8);
  graph_.AddStaticReal(m, kEvPersonName, 0.3);
  graph_.AddStaticReal(m, kEvPersonEmail, 1.0);
  ASSERT_EQ(graph_.static_real(m).size(), 2u);
  EXPECT_FLOAT_EQ(graph_.static_real(m)[0].sim, 0.8f);
}

// Enrichment: (gone, x) folds into (keep, x) with edges reconnected.
TEST_F(DepGraphTest, MergeReferencesFoldsParallelPairs) {
  // Nodes: (1,2) merged pair; (1,3) and (2,3) both exist.
  const NodeId pair12 = graph_.AddRefPairNode(0, 1, 2);
  const NodeId pair13 = graph_.AddRefPairNode(0, 1, 3);
  const NodeId pair23 = graph_.AddRefPairNode(0, 2, 3);
  const NodeId value = graph_.AddValuePairNode(0, 1, 0.9, NodeState::kInactive);
  graph_.AddEdge(value, pair23, DependencyKind::kRealValued, kEvPersonName);
  graph_.mutable_node(pair12).state = NodeState::kMerged;

  const MergeRefsResult result = graph_.MergeReferences(1, 2);
  ASSERT_EQ(result.folded.size(), 1u);
  EXPECT_EQ(result.folded[0], pair23);
  ASSERT_EQ(result.gained_inputs.size(), 1u);
  EXPECT_EQ(result.gained_inputs[0], pair13);

  EXPECT_TRUE(graph_.node(pair23).dead);
  EXPECT_EQ(graph_.num_live_nodes(), 3);
  // The value evidence that backed (2,3) now feeds (1,3).
  ASSERT_EQ(graph_.in_edges(pair13).size(), 1u);
  EXPECT_EQ(graph_.in_edges(pair13)[0].node, value);
  EXPECT_EQ(graph_.out_edges(value)[0].node, pair13);
  // Index: (2,3) is gone; (1,3) still resolvable.
  EXPECT_EQ(graph_.FindRefPair(2, 3), kInvalidNode);
  EXPECT_EQ(graph_.FindRefPair(1, 3), pair13);
}

TEST_F(DepGraphTest, MergeReferencesRenamesWhenNoTarget) {
  const NodeId pair12 = graph_.AddRefPairNode(0, 1, 2);
  const NodeId pair23 = graph_.AddRefPairNode(0, 2, 3);
  graph_.mutable_node(pair12).state = NodeState::kMerged;

  const MergeRefsResult result = graph_.MergeReferences(1, 2);
  EXPECT_TRUE(result.folded.empty());
  // (2,3) was renamed to (1,3) and flagged for recomputation.
  ASSERT_EQ(result.gained_inputs.size(), 1u);
  EXPECT_EQ(result.gained_inputs[0], pair23);
  EXPECT_FALSE(graph_.node(pair23).dead);
  EXPECT_EQ(graph_.FindRefPair(1, 3), pair23);
  EXPECT_EQ(graph_.FindRefPair(2, 3), kInvalidNode);
  EXPECT_EQ(graph_.node(pair23).a, 1);
  EXPECT_EQ(graph_.node(pair23).b, 3);
}

TEST_F(DepGraphTest, MergePreservesMarkerAndSkipsMergedNodes) {
  const NodeId pair12 = graph_.AddRefPairNode(0, 1, 2);
  graph_.mutable_node(pair12).state = NodeState::kMerged;
  const MergeRefsResult result = graph_.MergeReferences(1, 2);
  EXPECT_TRUE(result.folded.empty());
  EXPECT_TRUE(result.gained_inputs.empty());
  EXPECT_FALSE(graph_.node(pair12).dead);
  EXPECT_EQ(graph_.FindRefPair(1, 2), pair12);
}

TEST_F(DepGraphTest, FoldTransfersNonMergeState) {
  graph_.AddRefPairNode(0, 1, 2);
  const NodeId pair13 = graph_.AddRefPairNode(0, 1, 3);
  const NodeId pair23 = graph_.AddRefPairNode(0, 2, 3);
  graph_.mutable_node(graph_.FindRefPair(1, 2)).state = NodeState::kMerged;
  graph_.mutable_node(pair23).state = NodeState::kNonMerge;

  graph_.MergeReferences(1, 2);
  // 3 was constrained apart from 2; the cluster {1,2} inherits that.
  EXPECT_EQ(graph_.node(pair13).state, NodeState::kNonMerge);
}

TEST_F(DepGraphTest, FoldAccumulatesStaticEvidence) {
  graph_.AddRefPairNode(0, 1, 2);
  const NodeId pair13 = graph_.AddRefPairNode(0, 1, 3);
  const NodeId pair23 = graph_.AddRefPairNode(0, 2, 3);
  graph_.mutable_node(graph_.FindRefPair(1, 2)).state = NodeState::kMerged;
  graph_.AddStaticReal(pair23, kEvPersonEmail, 1.0);
  graph_.mutable_node(pair23).static_weak = 2;

  graph_.MergeReferences(1, 2);
  const Node& survivor = graph_.node(pair13);
  ASSERT_EQ(graph_.static_real(pair13).size(), 1u);
  EXPECT_FLOAT_EQ(graph_.static_real(pair13)[0].sim, 1.0f);
  EXPECT_EQ(survivor.static_weak, 2);
}

TEST_F(DepGraphTest, FoldKeepsMaxSimilarity) {
  graph_.AddRefPairNode(0, 1, 2);
  const NodeId pair13 = graph_.AddRefPairNode(0, 1, 3);
  const NodeId pair23 = graph_.AddRefPairNode(0, 2, 3);
  graph_.mutable_node(graph_.FindRefPair(1, 2)).state = NodeState::kMerged;
  graph_.mutable_node(pair13).sim = 0.2f;
  graph_.mutable_node(pair23).sim = 0.7f;
  graph_.MergeReferences(1, 2);
  EXPECT_FLOAT_EQ(graph_.node(pair13).sim, 0.7f);
}

}  // namespace
}  // namespace recon
