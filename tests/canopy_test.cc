#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/canopy.h"
#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"

namespace recon {
namespace {

class CanopyTest : public ::testing::Test {
 protected:
  CanopyTest() : data_(BuildPimSchema()) {
    binding_ = SchemaBinding::Resolve(data_.schema());
  }

  RefId Person(const std::string& name, const std::string& email = "") {
    const RefId id = data_.NewReference(binding_.person, -1);
    if (!name.empty()) {
      data_.mutable_reference(id).AddAtomicValue(binding_.person_name, name);
    }
    if (!email.empty()) {
      data_.mutable_reference(id).AddAtomicValue(binding_.person_email,
                                                 email);
    }
    return id;
  }

  bool ArePaired(RefId a, RefId b, const CandidateList& list) {
    return std::find(list.begin(), list.end(),
                     std::make_pair(std::min(a, b), std::max(a, b))) !=
           list.end();
  }

  Dataset data_;
  SchemaBinding binding_;
};

TEST_F(CanopyTest, SimilarReferencesShareACanopy) {
  const RefId a = Person("Robert S. Epstein", "repstein@cs.wisc.edu");
  const RefId b = Person("Epstein, R.S.");
  const RefId c = Person("Eugene Wong", "ew@berkeley.edu");
  const auto list =
      GenerateCanopyCandidates(data_, binding_, CanopyOptions{});
  EXPECT_TRUE(ArePaired(a, b, list));
  EXPECT_FALSE(ArePaired(a, c, list));
}

TEST_F(CanopyTest, LooseThresholdControlsCoverage) {
  // Partial feature overlap in both directions: the shared surname tokens
  // are a minority of either side's features. (Subset relationships score
  // 1.0 under the overlap coefficient by design.)
  const RefId a = Person("Alice Cooper", "alice.cooper@x.edu");
  const RefId b = Person("Cooper, A.", "different@y.edu");
  CanopyOptions strict;
  strict.loose_threshold = 0.99;
  strict.tight_threshold = 0.99;
  EXPECT_FALSE(
      ArePaired(a, b, GenerateCanopyCandidates(data_, binding_, strict)));
  CanopyOptions lax;
  lax.loose_threshold = 0.05;
  lax.tight_threshold = 0.99;
  EXPECT_TRUE(
      ArePaired(a, b, GenerateCanopyCandidates(data_, binding_, lax)));
}

TEST_F(CanopyTest, PairsAreCanonicalUniqueAndDeterministic) {
  for (int i = 0; i < 12; ++i) {
    Person("Dana Whitcombe", "dana.whitcombe@x.edu");
  }
  const auto first =
      GenerateCanopyCandidates(data_, binding_, CanopyOptions{});
  const auto second =
      GenerateCanopyCandidates(data_, binding_, CanopyOptions{});
  EXPECT_EQ(first, second);
  std::set<std::pair<RefId, RefId>> seen;
  for (const auto& [a, b] : first) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(seen.insert({a, b}).second);
  }
  EXPECT_EQ(first.size(), 12u * 11 / 2);  // One canopy, all pairs.
}

TEST_F(CanopyTest, OversizedCanopiesAreSkipped) {
  CanopyOptions options;
  options.max_canopy_size = 5;
  for (int i = 0; i < 10; ++i) Person("Dana Whitcombe");
  EXPECT_TRUE(GenerateCanopyCandidates(data_, binding_, options).empty());
}

TEST_F(CanopyTest, CanopyReconciliationMatchesBlockingQuality) {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.03);
  const Dataset data = datagen::GeneratePim(config);
  const int person = data.schema().RequireClass("Person");

  ReconcilerOptions blocking = ReconcilerOptions::DepGraph();
  ReconcilerOptions canopy = ReconcilerOptions::DepGraph();
  canopy.use_canopies = true;
  const PairMetrics m_block =
      EvaluateClass(data, Reconciler(blocking).Run(data).cluster, person);
  const PairMetrics m_canopy =
      EvaluateClass(data, Reconciler(canopy).Run(data).cluster, person);
  EXPECT_NEAR(m_canopy.f1, m_block.f1, 0.02);
}

}  // namespace
}  // namespace recon
