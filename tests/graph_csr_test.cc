// Determinism sweep for the CSR dependency graph and the region-partitioned
// parallel commit (DESIGN.md §13): datasets × threads {1, 2, 4, 8} ×
// {evidence_cache, constraints, budgets} must produce byte-identical
// partitions and stats — identical to the plain sequential drain AND to the
// golden fingerprints committed below. The goldens pin the output across
// commits: a change in CSR layout, region partitioning, rollback-and-replay,
// or budget probing that alters any partition, merge order, or deterministic
// counter fails here even if it is self-consistent across thread counts.
//
// Runs under both sanitizers via the ctest `asan` and `tsan` labels
// (tools/check_asan.sh, tools/check_tsan.sh).
//
// Regenerating goldens after an *intended* output change:
//   RECON_REGEN_GOLDENS=1 build/tests/graph_csr_test | grep '    {'
// and paste the printed rows over kGolden below.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "datagen/pim_generator.h"
#include "model/dataset.h"

namespace recon {
namespace {

Dataset SmallPim() {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.10);
  return datagen::GeneratePim(config);
}

Dataset SmallCora() {
  datagen::CoraConfig config;
  config.num_papers = 30;
  config.num_citations = 300;
  config.num_authors = 60;
  config.num_venue_series = 12;
  return datagen::GenerateCora(config);
}

/// Everything about a run that must be bit-stable: an order-sensitive hash
/// of the partition and the direct merge sequence, plus the deterministic
/// counters. Wall times and graph_bytes (padding- and platform-dependent)
/// are deliberately excluded.
struct Fingerprint {
  uint64_t hash = 0;
  int64_t merges = 0;
  int64_t folds = 0;
  int64_t recomputations = 0;
  int64_t nodes = 0;
  int64_t edges = 0;

  bool operator==(const Fingerprint&) const = default;
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

Fingerprint FingerprintOf(const ReconcileResult& result) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const int rep : result.cluster) {
    h = Fnv1a(h, static_cast<uint64_t>(rep));
  }
  // merged_pairs is the *direct* merge sequence in commit order, so the
  // hash also pins the canonical order rollback-and-replay must preserve,
  // not just the final partition.
  for (const auto& [a, b] : result.merged_pairs) {
    h = Fnv1a(h, (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b));
  }
  return {h,
          result.stats.num_merges,
          result.stats.num_folds,
          result.stats.num_recomputations,
          result.stats.num_nodes,
          result.stats.num_edges};
}

struct GoldenRow {
  const char* dataset;
  bool cache;
  bool constraints;
  bool budget;
  Fingerprint want;
};

// Recorded from the sequential drain (parallel_fixed_point=false); the
// sweep asserts every thread count reproduces these exactly.
constexpr GoldenRow kGolden[] = {
    {"PIM-A", true, true, false, {0x1f9a6ccc9ffec150ull, 885, 6375, 2003, 9675, 6602}},
    {"PIM-A", true, true, true, {0x60874c104dc80798ull, 25, 550, 71, 9675, 15061}},
    {"PIM-A", true, false, false, {0xd59ecdb0c50dd522ull, 895, 6229, 2190, 9386, 7014}},
    {"PIM-A", true, false, true, {0x60874c104dc80798ull, 25, 550, 71, 9386, 15509}},
    {"PIM-A", false, true, false, {0x1f9a6ccc9ffec150ull, 885, 6375, 2003, 9675, 6602}},
    {"PIM-A", false, true, true, {0x60874c104dc80798ull, 25, 550, 71, 9675, 15061}},
    {"PIM-A", false, false, false, {0xd59ecdb0c50dd522ull, 895, 6229, 2190, 9386, 7014}},
    {"PIM-A", false, false, true, {0x60874c104dc80798ull, 25, 550, 71, 9386, 15509}},
    {"Cora", true, true, false, {0xbb0a4a8b3e398b2dull, 2061, 29546, 4723, 34375, 14644}},
    {"Cora", true, true, true, {0x87c0ee777da2fef1ull, 25, 1250, 92, 34375, 54747}},
    {"Cora", true, false, false, {0xbb0a4a8b3e398b2dull, 2061, 28874, 4743, 33606, 14714}},
    {"Cora", true, false, true, {0x87c0ee777da2fef1ull, 25, 1250, 92, 33606, 55569}},
    {"Cora", false, true, false, {0xbb0a4a8b3e398b2dull, 2061, 29546, 4723, 34375, 14644}},
    {"Cora", false, true, true, {0x87c0ee777da2fef1ull, 25, 1250, 92, 34375, 54747}},
    {"Cora", false, false, false, {0xbb0a4a8b3e398b2dull, 2061, 28874, 4743, 33606, 14714}},
    {"Cora", false, false, true, {0x87c0ee777da2fef1ull, 25, 1250, 92, 33606, 55569}},
};

bool RegenMode() { return std::getenv("RECON_REGEN_GOLDENS") != nullptr; }

void PrintGoldenRow(const std::string& dataset, bool cache, bool constraints,
                    bool budget, const Fingerprint& fp) {
  std::printf(
      "    {\"%s\", %s, %s, %s, {0x%016llxull, %lld, %lld, %lld, %lld, "
      "%lld}},\n",
      dataset.c_str(), cache ? "true" : "false",
      constraints ? "true" : "false", budget ? "true" : "false",
      static_cast<unsigned long long>(fp.hash),
      static_cast<long long>(fp.merges), static_cast<long long>(fp.folds),
      static_cast<long long>(fp.recomputations),
      static_cast<long long>(fp.nodes), static_cast<long long>(fp.edges));
}

const GoldenRow* FindGolden(const std::string& dataset, bool cache,
                            bool constraints, bool budget) {
  for (const GoldenRow& row : kGolden) {
    if (dataset == row.dataset && cache == row.cache &&
        constraints == row.constraints && budget == row.budget) {
      return &row;
    }
  }
  return nullptr;
}

void ExpectFingerprint(const Fingerprint& want, const Fingerprint& got) {
  EXPECT_EQ(want.hash, got.hash);
  EXPECT_EQ(want.merges, got.merges);
  EXPECT_EQ(want.folds, got.folds);
  EXPECT_EQ(want.recomputations, got.recomputations);
  EXPECT_EQ(want.nodes, got.nodes);
  EXPECT_EQ(want.edges, got.edges);
}

void SweepDataset(const Dataset& dataset, const std::string& dataset_name) {
  for (const bool evidence_cache : {true, false}) {
    for (const bool constraints : {true, false}) {
      for (const bool budget : {false, true}) {
        ReconcilerOptions options = ReconcilerOptions::DepGraph();
        options.evidence_cache = evidence_cache;
        options.constraints = constraints;
        // Force wavefront rounds even on these deliberately small graphs.
        options.parallel_frontier_min = 4;
        if (budget) {
          // Deterministic limits only (merge + iteration budgets probe at
          // fixed commit boundaries); a deadline would make the stop point
          // depend on wall time. Small enough to bind on both datasets, so
          // the frozen-at-stop reinject path is exercised too.
          options.budget.max_merges = 25;
          options.budget.max_solver_iterations = 3000;
        }

        SCOPED_TRACE(dataset_name + " cache=" + std::to_string(evidence_cache) +
                     " constraints=" + std::to_string(constraints) +
                     " budget=" + std::to_string(budget));

        // Sequential reference: the plain drain, wavefront off.
        options.num_threads = 1;
        options.parallel_fixed_point = false;
        const ReconcileResult serial = Reconciler(options).Run(dataset);
        const Fingerprint serial_fp = FingerprintOf(serial);

        if (RegenMode()) {
          PrintGoldenRow(dataset_name, evidence_cache, constraints, budget,
                         serial_fp);
        } else {
          const GoldenRow* golden =
              FindGolden(dataset_name, evidence_cache, constraints, budget);
          ASSERT_NE(golden, nullptr) << "no golden row for this config";
          ExpectFingerprint(golden->want, serial_fp);
        }

        if (budget) {
          EXPECT_EQ(serial.stats.num_merges, options.budget.max_merges);
        }

        options.parallel_fixed_point = true;
        for (const int threads : {1, 2, 4, 8}) {
          SCOPED_TRACE("threads=" + std::to_string(threads));
          options.num_threads = threads;
          const ReconcileResult parallel = Reconciler(options).Run(dataset);
          // Byte-identical partitions, merge sequence, and stats — against
          // the sequential reference AND (transitively) the golden.
          EXPECT_EQ(serial.cluster, parallel.cluster);
          EXPECT_EQ(serial.merged_pairs, parallel.merged_pairs);
          ExpectFingerprint(serial_fp, FingerprintOf(parallel));
          EXPECT_EQ(serial.stats.num_live_nodes, parallel.stats.num_live_nodes);
          EXPECT_EQ(serial.stats.num_inedge_scans,
                    parallel.stats.num_inedge_scans);
          EXPECT_EQ(serial.stats.num_delta_pushes,
                    parallel.stats.num_delta_pushes);
          EXPECT_EQ(serial.stats.stop_reason, parallel.stats.stop_reason);
        }
      }
    }
  }
}

TEST(GraphCsrTest, PimGoldenSweep) { SweepDataset(SmallPim(), "PIM-A"); }

TEST(GraphCsrTest, CoraGoldenSweep) { SweepDataset(SmallCora(), "Cora"); }

}  // namespace
}  // namespace recon
