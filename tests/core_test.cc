#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/candidates.h"
#include "core/graph_builder.h"
#include "core/reconciler.h"
#include "model/dataset.h"

namespace recon {
namespace {

/// Builds the paper's Figure 1(b) references. Returns the dataset and
/// records each ref id in `ids` keyed by the paper's labels (a1, p1, c1
/// ...). Gold: article 0, Epstein 1, Stonebraker 2, Wong 3, venue 4.
Dataset BuildFigure1(std::vector<RefId>* p, RefId* a1, RefId* a2, RefId* c1,
                     RefId* c2) {
  Dataset data(BuildPimSchema());
  const Schema& s = data.schema();
  const int kPerson = s.RequireClass("Person");
  const int kArticle = s.RequireClass("Article");
  const int kVenue = s.RequireClass("Venue");
  const int kName = s.RequireAttribute(kPerson, "name");
  const int kEmail = s.RequireAttribute(kPerson, "email");
  const int kCoAuthor = s.RequireAttribute(kPerson, "coAuthor");
  const int kContact = s.RequireAttribute(kPerson, "emailContact");
  const int kTitle = s.RequireAttribute(kArticle, "title");
  const int kPages = s.RequireAttribute(kArticle, "pages");
  const int kAuthors = s.RequireAttribute(kArticle, "authoredBy");
  const int kPub = s.RequireAttribute(kArticle, "publishedIn");
  const int kVName = s.RequireAttribute(kVenue, "name");
  const int kVYear = s.RequireAttribute(kVenue, "year");

  auto person = [&](int gold, const std::string& name,
                    const std::string& email) {
    const RefId id = data.NewReference(kPerson, gold);
    if (!name.empty()) data.mutable_reference(id).AddAtomicValue(kName, name);
    if (!email.empty()) {
      data.mutable_reference(id).AddAtomicValue(kEmail, email);
    }
    return id;
  };

  p->push_back(person(1, "Robert S. Epstein", ""));     // p1
  p->push_back(person(2, "Michael Stonebraker", ""));   // p2
  p->push_back(person(3, "Eugene Wong", ""));           // p3
  p->push_back(person(1, "Epstein, R.S.", ""));         // p4
  p->push_back(person(2, "Stonebraker, M.", ""));       // p5
  p->push_back(person(3, "Wong, E.", ""));              // p6
  p->push_back(person(3, "Eugene Wong", "eugene@berkeley.edu"));       // p7
  p->push_back(person(2, "", "stonebraker@csail.mit.edu"));            // p8
  p->push_back(person(2, "mike", "stonebraker@csail.mit.edu"));        // p9

  *c1 = data.NewReference(kVenue, 4);
  data.mutable_reference(*c1).AddAtomicValue(
      kVName, "ACM Conference on Management of Data");
  data.mutable_reference(*c1).AddAtomicValue(kVYear, "1978");
  *c2 = data.NewReference(kVenue, 4);
  data.mutable_reference(*c2).AddAtomicValue(kVName, "ACM SIGMOD");
  data.mutable_reference(*c2).AddAtomicValue(kVYear, "1978");

  const char* title =
      "Distributed query processing in a relational data base system";
  *a1 = data.NewReference(kArticle, 0);
  *a2 = data.NewReference(kArticle, 0);
  for (const RefId a : {*a1, *a2}) {
    data.mutable_reference(a).AddAtomicValue(kTitle, title);
    data.mutable_reference(a).AddAtomicValue(kPages, "169-180");
  }
  for (int i = 0; i < 3; ++i) {
    data.mutable_reference(*a1).AddAssociation(kAuthors, (*p)[i]);
    data.mutable_reference(*a2).AddAssociation(kAuthors, (*p)[i + 3]);
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      data.mutable_reference((*p)[i]).AddAssociation(kCoAuthor, (*p)[j]);
      data.mutable_reference((*p)[i + 3])
          .AddAssociation(kCoAuthor, (*p)[j + 3]);
    }
  }
  data.mutable_reference(*a1).AddAssociation(kPub, *c1);
  data.mutable_reference(*a2).AddAssociation(kPub, *c2);
  data.mutable_reference((*p)[6]).AddAssociation(kContact, (*p)[7]);
  data.mutable_reference((*p)[7]).AddAssociation(kContact, (*p)[6]);
  return data;
}

class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test() : data_(BuildFigure1(&p_, &a1_, &a2_, &c1_, &c2_)) {}

  bool Together(const ReconcileResult& r, RefId x, RefId y) {
    return r.cluster[x] == r.cluster[y];
  }

  std::vector<RefId> p_;
  RefId a1_, a2_, c1_, c2_;
  Dataset data_;
};

TEST_F(Figure1Test, DepGraphReproducesFigure1c) {
  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult r = reconciler.Run(data_);

  // {a1, a2}
  EXPECT_TRUE(Together(r, a1_, a2_));
  // {c1, c2} — only reachable through article propagation.
  EXPECT_TRUE(Together(r, c1_, c2_));
  // {p1, p4}, {p2, p5, p8, p9}, {p3, p6, p7}.
  EXPECT_TRUE(Together(r, p_[0], p_[3]));
  EXPECT_TRUE(Together(r, p_[1], p_[4]));
  EXPECT_TRUE(Together(r, p_[7], p_[8]));  // Same email: key attribute.
  EXPECT_TRUE(Together(r, p_[1], p_[7]));  // Needs enrichment + contacts.
  EXPECT_TRUE(Together(r, p_[2], p_[5]));
  EXPECT_TRUE(Together(r, p_[2], p_[6]));
  // Distinct entities stay apart.
  EXPECT_FALSE(Together(r, p_[0], p_[1]));
  EXPECT_FALSE(Together(r, p_[1], p_[2]));
  EXPECT_FALSE(Together(r, p_[0], p_[2]));
}

TEST_F(Figure1Test, IndepDecOptionsMissTheHardMerges) {
  const Reconciler reconciler(ReconcilerOptions::IndepDec());
  const ReconcileResult r = reconciler.Run(data_);
  // Attribute-wise alone cannot merge the venue variants or bridge
  // "Stonebraker, M." to the email-only reference.
  EXPECT_FALSE(Together(r, c1_, c2_));
  EXPECT_FALSE(Together(r, p_[4], p_[7]));
  // But exact duplicates still work.
  EXPECT_TRUE(Together(r, a1_, a2_));
  EXPECT_TRUE(Together(r, p_[7], p_[8]));
  EXPECT_TRUE(Together(r, p_[2], p_[6]));  // Identical name strings.
}

TEST_F(Figure1Test, ConstraintsKeepCoAuthorsApart) {
  // Sanity: authors of one article never merge even under the full
  // algorithm (constraint 1).
  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult r = reconciler.Run(data_);
  EXPECT_FALSE(Together(r, p_[0], p_[1]));
  EXPECT_FALSE(Together(r, p_[3], p_[5]));
}

TEST_F(Figure1Test, ContradictoryNameIsNotGluedThroughSharedEmail) {
  // The paper's §3.4 example: if p9 were ("Matt", same email as p8), the
  // name constraint (2) must keep Matt apart from Michael Stonebraker
  // references even though p8/p9 share an address with... — here we check
  // the weaker property that Matt does not land in Michael's cluster.
  const int kPerson = data_.schema().RequireClass("Person");
  const int kName = data_.schema().RequireAttribute(kPerson, "name");
  const int kEmail = data_.schema().RequireAttribute(kPerson, "email");
  const RefId matt = data_.NewReference(kPerson, 99);
  data_.mutable_reference(matt).AddAtomicValue(kName, "Matt Stonebraker");
  data_.mutable_reference(matt).AddAtomicValue(kEmail,
                                               "matt@cs.berkeley.edu");

  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult r = reconciler.Run(data_);
  EXPECT_FALSE(Together(r, matt, p_[1]));
  EXPECT_FALSE(Together(r, matt, p_[4]));
}

TEST_F(Figure1Test, DeterministicAcrossRuns) {
  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult r1 = reconciler.Run(data_);
  const ReconcileResult r2 = reconciler.Run(data_);
  EXPECT_EQ(r1.cluster, r2.cluster);
}

TEST_F(Figure1Test, StatsAreConsistent) {
  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult r = reconciler.Run(data_);
  EXPECT_GT(r.stats.num_nodes, 0);
  EXPECT_GE(r.stats.num_nodes, r.stats.num_live_nodes);
  EXPECT_GT(r.stats.num_merges, 0);
  EXPECT_GT(r.stats.num_recomputations, 0);
}

TEST_F(Figure1Test, PartitionsOfClassCoversAllRefs) {
  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult r = reconciler.Run(data_);
  const int kPerson = data_.schema().RequireClass("Person");
  const auto partitions = r.PartitionsOfClass(data_, kPerson);
  size_t total = 0;
  for (const auto& part : partitions) total += part.size();
  EXPECT_EQ(total, p_.size());
  EXPECT_EQ(static_cast<int>(partitions.size()),
            r.NumPartitionsOfClass(data_, kPerson));
}

// ---- Candidate generation -----------------------------------------------------

TEST_F(Figure1Test, BlockingFindsTheImportantPairs) {
  const SchemaBinding binding = SchemaBinding::Resolve(data_.schema());
  ReconcilerOptions options;
  const CandidateList candidates =
      GenerateCandidates(data_, binding, options);
  std::set<std::pair<RefId, RefId>> set(candidates.begin(), candidates.end());

  auto has = [&](RefId a, RefId b) {
    return set.count({std::min(a, b), std::max(a, b)}) > 0;
  };
  EXPECT_TRUE(has(p_[0], p_[3]));  // Epstein / Epstein, R.S.
  EXPECT_TRUE(has(p_[2], p_[6]));  // Eugene Wong twice.
  EXPECT_TRUE(has(p_[4], p_[7]));  // Stonebraker, M. / stonebraker@...
  EXPECT_TRUE(has(p_[7], p_[8]));  // Same email.
  EXPECT_TRUE(has(a1_, a2_));      // Same title.
  EXPECT_FALSE(has(p_[0], p_[2]));  // Epstein vs Wong share nothing.
}

TEST_F(Figure1Test, BlockingKeysAreDeduplicated) {
  const SchemaBinding binding = SchemaBinding::Resolve(data_.schema());
  const auto keys = BlockingKeys(data_, p_[1], binding);
  std::set<std::string> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
  EXPECT_FALSE(keys.empty());
}

TEST_F(Figure1Test, NoBlockingGeneratesAllSameClassPairs) {
  const SchemaBinding binding = SchemaBinding::Resolve(data_.schema());
  ReconcilerOptions options;
  options.use_blocking = false;
  const CandidateList candidates =
      GenerateCandidates(data_, binding, options);
  // 9 persons + 2 articles + 2 venues: C(9,2) + 1 + 1 = 38.
  EXPECT_EQ(candidates.size(), 38u);
}

// ---- Graph construction ----------------------------------------------------------

TEST_F(Figure1Test, BuilderCreatesVenueValuePropagation) {
  ReconcilerOptions options;
  BuiltGraph built = BuildDependencyGraph(data_, options);
  const NodeId venue_pair = built.graph->FindRefPair(c1_, c2_);
  ASSERT_NE(venue_pair, kInvalidNode);
  // The venue pair must have a strong-boolean edge to its name value pair
  // (Fig. 2's m5 -> n6).
  bool found = false;
  for (const Edge& e : built.graph->out_edges(venue_pair)) {
    if (e.kind == DependencyKind::kStrongBoolean &&
        !built.graph->node(e.node).IsRefPair()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(Figure1Test, BuilderMarksCoAuthorsNonMerge) {
  ReconcilerOptions options;
  BuiltGraph built = BuildDependencyGraph(data_, options);
  // p2 and p3 are coauthors of a1: if their node exists it must be
  // non-merge; p1/p2 likewise.
  for (const auto& [x, y] : std::vector<std::pair<RefId, RefId>>{
           {p_[0], p_[1]}, {p_[1], p_[2]}, {p_[3], p_[4]}}) {
    const NodeId node = built.graph->FindRefPair(x, y);
    ASSERT_NE(node, kInvalidNode);
    EXPECT_EQ(built.graph->node(node).state, NodeState::kNonMerge);
  }
}

TEST_F(Figure1Test, AttrWiseLevelBuildsNoAssociationEdges) {
  ReconcilerOptions options;
  options.evidence_level = EvidenceLevel::kAttrWise;
  BuiltGraph built = BuildDependencyGraph(data_, options);
  for (NodeId id = 0; id < built.graph->num_nodes(); ++id) {
    const Node& node = built.graph->node(id);
    for (const Edge& e : built.graph->in_edges(id)) {
      // No reference pair may depend on another reference pair.
      if (node.IsRefPair()) {
        EXPECT_FALSE(built.graph->node(e.node).IsRefPair());
      }
    }
  }
}

TEST_F(Figure1Test, InitialQueueOrdersVenuesPersonsArticles) {
  ReconcilerOptions options;
  BuiltGraph built = BuildDependencyGraph(data_, options);
  const int kVenue = data_.schema().RequireClass("Venue");
  const int kArticle = data_.schema().RequireClass("Article");
  int last_venue = -1;
  int first_article = static_cast<int>(built.initial_queue.size());
  for (size_t i = 0; i < built.initial_queue.size(); ++i) {
    const Node& node = built.graph->node(built.initial_queue[i]);
    if (node.class_id == kVenue) last_venue = static_cast<int>(i);
    if (node.class_id == kArticle &&
        static_cast<int>(i) < first_article) {
      first_article = static_cast<int>(i);
    }
  }
  if (last_venue >= 0) {
    EXPECT_LT(last_venue, first_article);
  }
}

}  // namespace
}  // namespace recon
