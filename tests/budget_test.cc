// Execution budgets, cooperative cancellation, and anytime graceful
// degradation (DESIGN.md §10). The contract under test:
//
//   * Budget exhaustion / cancellation NEVER aborts. Every stop — at any
//     probe point of any phase — still enforces constraints, computes the
//     transitive closure, and returns a valid partition plus the correct
//     StopReason and budget counters.
//   * Iteration- and merge-budget stops freeze the solve after an exact
//     prefix of the canonical commit sequence, so their output is
//     byte-identical at every thread count.
//   * Degradation is anytime: a larger iteration budget never loses a
//     merge a smaller one made, and a generous budget converges to the
//     unbudgeted result, byte-identically.
//
// Deterministic fault injection (util/fault_injection.h) drives every
// StopReason through every phase — batch build, batch solve, and
// incremental flushes — without timing flakiness. Runs under
// AddressSanitizer via the ctest `asan` label.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/graph_builder.h"
#include "core/incremental.h"
#include "core/reconciler.h"
#include "core/solver.h"
#include "datagen/pim_generator.h"
#include "model/dataset.h"
#include "util/budget.h"
#include "util/fault_injection.h"

namespace recon {
namespace {

Dataset SmallPim(uint64_t seed = 42) {
  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.10);
  config.seed = seed;
  return datagen::GeneratePim(config);
}

/// The anytime-validity contract: whatever the stop reason, the result is
/// a partition of the references — canonical representatives, class-pure
/// clusters, merged pairs consistent with the clustering.
void ExpectValidPartition(const Dataset& dataset,
                          const ReconcileResult& result) {
  ASSERT_EQ(result.cluster.size(),
            static_cast<size_t>(dataset.num_references()));
  for (RefId id = 0; id < dataset.num_references(); ++id) {
    const int rep = result.cluster[id];
    ASSERT_GE(rep, 0);
    ASSERT_LT(rep, dataset.num_references());
    EXPECT_EQ(result.cluster[rep], rep) << "non-canonical rep for " << id;
    EXPECT_EQ(dataset.reference(id).class_id(),
              dataset.reference(rep).class_id())
        << "cross-class cluster at " << id;
  }
  for (const auto& [a, b] : result.merged_pairs) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, dataset.num_references());
    ASSERT_GE(b, 0);
    ASSERT_LT(b, dataset.num_references());
    EXPECT_EQ(result.cluster[a], result.cluster[b])
        << "merged pair (" << a << ", " << b << ") not co-clustered";
  }
}

const StopReason kInjectableReasons[] = {
    StopReason::kDeadline,        StopReason::kIterationBudget,
    StopReason::kMergeBudget,     StopReason::kMemoryBudget,
    StopReason::kCancelled,
};

std::string Describe(ProbePoint point, StopReason reason, int64_t fire_at) {
  return std::string(ProbePointToString(point)) + "/" +
         StopReasonToString(reason) + "@" + std::to_string(fire_at);
}

// ---- Fault injection: every StopReason at every batch probe point ----------

TEST(BudgetFaultInjectionTest, EveryReasonAtEveryBatchProbePoint) {
  const Dataset dataset = SmallPim();
  // Per-point fire indices. The sequential solve probes kSolveRound
  // exactly once per Run (index 0); the other points probe repeatedly, so
  // also exercise a mid-phase stop.
  const std::vector<std::pair<ProbePoint, std::vector<int64_t>>>
      kBatchPoints = {
          {ProbePoint::kCandidates, {0, 3}},
          {ProbePoint::kBuild, {0, 3}},
          {ProbePoint::kSolveRound, {0}},
          {ProbePoint::kSolveCommit, {0, 3}},
      };
  for (const auto& [point, fire_indices] : kBatchPoints) {
    for (const StopReason reason : kInjectableReasons) {
      for (const int64_t fire_at : fire_indices) {
        SCOPED_TRACE(Describe(point, reason, fire_at));
        ReconcilerOptions options = ReconcilerOptions::DepGraph();
        auto injector =
            std::make_shared<FaultInjector>(point, fire_at, reason);
        options.probe_hook = injector;
        const ReconcileResult result = Reconciler(options).Run(dataset);
        ExpectValidPartition(dataset, result);
        EXPECT_GE(injector->fired(), 1)
            << "probe point never reached at index " << fire_at;
        EXPECT_EQ(result.stats.stop_reason, reason);
        EXPECT_GT(result.stats.num_budget_probes, 0);
      }
    }
  }
}

TEST(BudgetFaultInjectionTest, EveryReasonAtCanopyProbePoint) {
  const Dataset dataset = SmallPim();
  for (const StopReason reason : kInjectableReasons) {
    SCOPED_TRACE(Describe(ProbePoint::kCanopy, reason, 2));
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.use_canopies = true;
    auto injector =
        std::make_shared<FaultInjector>(ProbePoint::kCanopy, 2, reason);
    options.probe_hook = injector;
    const ReconcileResult result = Reconciler(options).Run(dataset);
    ExpectValidPartition(dataset, result);
    EXPECT_GE(injector->fired(), 1);
    EXPECT_EQ(result.stats.stop_reason, reason);
  }
}

TEST(BudgetFaultInjectionTest, LateSolveInjectionKeepsEarlierMerges) {
  // Firing deep into the solve must preserve the work already committed.
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  const ReconcileResult full = Reconciler(options).Run(dataset);
  ASSERT_GT(full.stats.num_merges, 0);
  // Inject three-quarters of the way through the full drain: far enough
  // in that merges have been committed, early enough that the stop is
  // genuinely premature.
  const int64_t fire_at = full.stats.solver_iterations * 3 / 4;
  auto injector = std::make_shared<FaultInjector>(
      ProbePoint::kSolveCommit, fire_at, StopReason::kCancelled);
  options.probe_hook = injector;
  const ReconcileResult result = Reconciler(options).Run(dataset);
  ExpectValidPartition(dataset, result);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kCancelled);
  EXPECT_GE(result.stats.solver_iterations, fire_at);
  EXPECT_GT(result.stats.num_merges, 0);
  EXPECT_LE(result.stats.num_merges, full.stats.num_merges);
}

TEST(BudgetFaultInjectionTest, HealthyRunProbesEveryBatchPhase) {
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  auto recorder = std::make_shared<ProbeRecorder>();
  options.probe_hook = recorder;
  const ReconcileResult result = Reconciler(options).Run(dataset);
  ExpectValidPartition(dataset, result);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kConverged);
  EXPECT_GT(recorder->seen(ProbePoint::kCandidates), 0);
  EXPECT_GT(recorder->seen(ProbePoint::kBuild), 0);
  EXPECT_GT(recorder->seen(ProbePoint::kSolveRound), 0);
  EXPECT_GT(recorder->seen(ProbePoint::kSolveCommit), 0);
  EXPECT_EQ(recorder->seen(ProbePoint::kCanopy), 0);  // Blocking path.
  // Probe traffic is deterministic and fully accounted: the tracker's
  // total is exactly what the hook observed.
  EXPECT_EQ(result.stats.num_budget_probes,
            recorder->seen(ProbePoint::kCandidates) +
                recorder->seen(ProbePoint::kBuild) +
                recorder->seen(ProbePoint::kSolveRound) +
                recorder->seen(ProbePoint::kSolveCommit));
}

// ---- Real (non-injected) budget exhaustion ---------------------------------

TEST(BudgetTest, TinyIterationBudgetReturnsValidPartition) {
  // Regression for the former RECON_CHECK abort: an iteration cap is a
  // degraded stop, never a crash.
  const Dataset dataset = SmallPim();
  for (const int64_t cap : {1, 2, 3, 10}) {
    SCOPED_TRACE("cap=" + std::to_string(cap));
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    options.budget.max_solver_iterations = cap;
    const ReconcileResult result = Reconciler(options).Run(dataset);
    ExpectValidPartition(dataset, result);
    EXPECT_EQ(result.stats.stop_reason, StopReason::kIterationBudget);
    EXPECT_LE(result.stats.solver_iterations, cap);
  }
}

TEST(BudgetTest, MergeBudgetStopsAtExactlyTheCap) {
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  const ReconcileResult unbudgeted = Reconciler(options).Run(dataset);
  ASSERT_GT(unbudgeted.stats.num_merges, 5);

  options.budget.max_merges = 5;
  const ReconcileResult result = Reconciler(options).Run(dataset);
  ExpectValidPartition(dataset, result);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kMergeBudget);
  EXPECT_EQ(result.stats.num_merges, 5);
}

TEST(BudgetTest, ExpiredDeadlineStillYieldsValidPartition) {
  // An (effectively) already-expired deadline: the wall clock is checked
  // at the very first probe, so the run degrades immediately — but still
  // returns a partition and the right reason.
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.budget.deadline_ms = 1e-6;
  const ReconcileResult result = Reconciler(options).Run(dataset);
  ExpectValidPartition(dataset, result);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kDeadline);
}

TEST(BudgetTest, TinyMemoryBudgetStopsTheBuild) {
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.budget.soft_max_memory_bytes = 1;
  const ReconcileResult result = Reconciler(options).Run(dataset);
  ExpectValidPartition(dataset, result);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kMemoryBudget);
  // The estimate is only reported once nodes exist, so most of the graph
  // is never built — but nothing crashes and the reason is precise.
}

TEST(BudgetTest, PreCancelledTokenDegradesImmediately) {
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.cancel = std::make_shared<CancellationToken>();
  options.cancel->RequestCancel();
  const ReconcileResult result = Reconciler(options).Run(dataset);
  ExpectValidPartition(dataset, result);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(result.stats.num_merges, 0);
}

TEST(BudgetTest, UnbudgetedRunReportsConvergence) {
  const Dataset dataset = SmallPim();
  const ReconcileResult result =
      Reconciler(ReconcilerOptions::DepGraph()).Run(dataset);
  EXPECT_EQ(result.stats.stop_reason, StopReason::kConverged);
  EXPECT_GT(result.stats.solver_iterations, 0);
  EXPECT_GT(result.stats.num_budget_probes, 0);
}

// ---- Determinism and anytime monotonicity ----------------------------------

TEST(BudgetDeterminismTest, IterationAndMergeStopsAreThreadInvariant) {
  const Dataset dataset = SmallPim();
  for (const bool use_merge_budget : {false, true}) {
    for (const int64_t limit : {int64_t{1}, int64_t{7}, int64_t{60}}) {
      ReconcilerOptions options = ReconcilerOptions::DepGraph();
      // Force wavefront rounds even on this deliberately small graph.
      options.parallel_frontier_min = 4;
      if (use_merge_budget) {
        options.budget.max_merges = limit;
      } else {
        options.budget.max_solver_iterations = limit;
      }
      options.num_threads = 1;
      const ReconcileResult reference = Reconciler(options).Run(dataset);
      ExpectValidPartition(dataset, reference);
      for (const int threads : {2, 4, 8}) {
        SCOPED_TRACE(std::string(use_merge_budget ? "merges" : "iterations") +
                     "=" + std::to_string(limit) +
                     " threads=" + std::to_string(threads));
        options.num_threads = threads;
        const ReconcileResult result = Reconciler(options).Run(dataset);
        EXPECT_EQ(reference.cluster, result.cluster);
        EXPECT_EQ(reference.merged_pairs, result.merged_pairs);
        EXPECT_EQ(reference.stats.stop_reason, result.stats.stop_reason);
        EXPECT_EQ(reference.stats.solver_iterations,
                  result.stats.solver_iterations);
        EXPECT_EQ(reference.stats.num_merges, result.stats.num_merges);
      }
    }
  }
}

TEST(BudgetDeterminismTest, SolveCommitInjectionIsThreadInvariant) {
  // kSolveCommit probes are per queue pop — a serial, canonical sequence —
  // so injecting at the Nth one stops after the same commit prefix at any
  // thread count.
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.parallel_frontier_min = 4;
  options.num_threads = 1;
  options.probe_hook = std::make_shared<FaultInjector>(
      ProbePoint::kSolveCommit, 25, StopReason::kIterationBudget);
  const ReconcileResult reference = Reconciler(options).Run(dataset);
  ExpectValidPartition(dataset, reference);
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    options.num_threads = threads;
    options.probe_hook = std::make_shared<FaultInjector>(
        ProbePoint::kSolveCommit, 25, StopReason::kIterationBudget);
    const ReconcileResult result = Reconciler(options).Run(dataset);
    EXPECT_EQ(reference.cluster, result.cluster);
    EXPECT_EQ(reference.merged_pairs, result.merged_pairs);
    EXPECT_EQ(reference.stats.num_merges, result.stats.num_merges);
  }
}

TEST(BudgetMonotonicityTest, LargerIterationBudgetNeverLosesMerges) {
  // Anytime property: the solve commits along one canonical sequence, so
  // the merge set at budget N is a subset of the merge set at budget M>N,
  // and a generous budget reproduces the unbudgeted result exactly.
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  // Constraint propagation between runs is not part of the solve prefix;
  // keep the comparison purely about the monotone fixed point.
  options.constraints = false;
  const ReconcileResult full = Reconciler(options).Run(dataset);
  ASSERT_EQ(full.stats.stop_reason, StopReason::kConverged);

  std::set<std::pair<RefId, RefId>> previous;
  for (const int64_t cap : {int64_t{5}, int64_t{25}, int64_t{125},
                            int64_t{100000}}) {
    SCOPED_TRACE("cap=" + std::to_string(cap));
    options.budget.max_solver_iterations = cap;
    const ReconcileResult result = Reconciler(options).Run(dataset);
    ExpectValidPartition(dataset, result);
    std::set<std::pair<RefId, RefId>> merges(result.merged_pairs.begin(),
                                             result.merged_pairs.end());
    EXPECT_TRUE(std::includes(merges.begin(), merges.end(),
                              previous.begin(), previous.end()))
        << "a merge was lost when the budget grew";
    previous = std::move(merges);
  }
  // The generous cap converged: byte-identical to the unbudgeted run.
  options.budget.max_solver_iterations = 100000;
  const ReconcileResult generous = Reconciler(options).Run(dataset);
  EXPECT_EQ(generous.stats.stop_reason, StopReason::kConverged);
  EXPECT_EQ(generous.cluster, full.cluster);
  EXPECT_EQ(generous.merged_pairs, full.merged_pairs);
}

TEST(BudgetTest, ClosureOnlyConstraintPassMatchesFullPropagation) {
  // The batch path propagates negative evidence in closure-only mode
  // (skipping demotions that cannot touch a merged node). The resulting
  // partition must match full propagation exactly — converged or frozen.
  const Dataset dataset = SmallPim();
  for (const int64_t cap : {int64_t{0}, int64_t{10}, int64_t{200}}) {
    SCOPED_TRACE("cap=" + std::to_string(cap));
    ReconcilerOptions options = ReconcilerOptions::DepGraph();
    if (cap > 0) options.budget.max_solver_iterations = cap;
    BuiltGraph full_graph = BuildDependencyGraph(dataset, options);
    BuiltGraph lazy_graph = BuildDependencyGraph(dataset, options);
    const Reconciler reconciler(options);

    ReconcileResult full;
    {
      BudgetTracker tracker(options.budget);
      ReconcileStats& stats = full.stats;
      FixedPointSolver solver(dataset, full_graph, options, &stats,
                              &tracker);
      solver.EnqueueNodes(full_graph.initial_queue);
      solver.Run();
      solver.PropagateNegativeEvidence(false);
      full.cluster = solver.Closure(&full.merged_pairs);
    }
    const ReconcileResult lazy = reconciler.RunOnGraph(dataset, lazy_graph);
    EXPECT_EQ(full.cluster, lazy.cluster);
    EXPECT_EQ(full.merged_pairs, lazy.merged_pairs);
  }
}

// ---- Incremental reconciliation --------------------------------------------

TEST(BudgetIncrementalTest, EveryReasonInjectedDuringFlush) {
  const Dataset dataset = SmallPim();
  // kSolveRound is probed once per flush (sequential path) — fire at 0.
  const std::vector<std::pair<ProbePoint, int64_t>> kFlushPoints = {
      {ProbePoint::kBuild, 1},
      {ProbePoint::kSolveRound, 0},
      {ProbePoint::kSolveCommit, 1}};
  for (const auto& [point, fire_at] : kFlushPoints) {
    for (const StopReason reason : kInjectableReasons) {
      SCOPED_TRACE(Describe(point, reason, fire_at));
      ReconcilerOptions options = ReconcilerOptions::DepGraph();
      options.premerge_equal_emails = false;
      auto injector = std::make_shared<FaultInjector>(point, fire_at, reason);
      options.probe_hook = injector;
      IncrementalReconciler reconciler(dataset, options);
      const ReconcileResult result = reconciler.result();
      ExpectValidPartition(reconciler.dataset(), result);
      EXPECT_GE(injector->fired(), 1);
      EXPECT_EQ(result.stats.stop_reason, reason);
    }
  }
}

TEST(BudgetIncrementalTest, BudgetedFlushesResumeAndConverge) {
  // Each Flush() spends one budget allotment and freezes with its queue
  // intact; repeated flushes resume the same canonical drain, so the
  // final result equals the unbudgeted incremental run, byte-identically.
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;
  // Interleaving constraint propagation with frozen partial solves is a
  // different (coarser) schedule than one straight drain; disable it so
  // resume equality is exact.
  options.constraints = false;

  IncrementalReconciler unbudgeted(dataset, options);
  const ReconcileResult want = unbudgeted.result();
  ASSERT_EQ(want.stats.stop_reason, StopReason::kConverged);

  options.budget.max_solver_iterations = 40;
  IncrementalReconciler budgeted(dataset, options);
  int flushes = 0;
  for (; flushes < 10000; ++flushes) {
    budgeted.Flush();
    if (budgeted.result().stats.stop_reason == StopReason::kConverged) break;
  }
  const ReconcileResult got = budgeted.result();
  EXPECT_EQ(got.stats.stop_reason, StopReason::kConverged);
  EXPECT_GT(flushes, 0) << "budget never froze a flush";
  EXPECT_EQ(got.cluster, want.cluster);
  ExpectValidPartition(budgeted.dataset(), got);
}

TEST(BudgetIncrementalTest, DegradedFlushReportsReasonAndStaysValid) {
  const Dataset dataset = SmallPim();
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;
  options.budget.max_merges = 3;
  IncrementalReconciler reconciler(dataset, options);
  reconciler.Flush();
  const ReconcileResult result = reconciler.result();
  ExpectValidPartition(reconciler.dataset(), result);
  // Each flush re-arms the merge budget; whichever epoch result() landed
  // in, the run is either mid-degradation or eventually converged.
  EXPECT_TRUE(result.stats.stop_reason == StopReason::kMergeBudget ||
              result.stats.stop_reason == StopReason::kConverged);

  // Later batches still reconcile (with their own fresh allotments).
  const int person = dataset.schema().RequireClass("Person");
  const int name = dataset.schema().RequireAttribute(person, "name");
  Reference ref(person, 4);
  ref.AddAtomicValue(name, "Zebulon Quixote");
  reconciler.AddReference(std::move(ref));
  const ReconcileResult after = reconciler.result();
  ExpectValidPartition(reconciler.dataset(), after);
}

}  // namespace
}  // namespace recon
