#!/usr/bin/env bash
# Runs every perf_* bench with --json and collects BENCH_<name>.json files
# so perf trajectories can be tracked across commits.
#
# Usage: tools/run_benches.sh [--gate-speedup] [--gate-shard]
#        [--gate-kernels] [build_dir] [out_dir]
#   build_dir  defaults to build (must already be built)
#   out_dir    defaults to the current directory
#
# --gate-speedup: after the run, assert from BENCH_scaling.json that the
#   solve commit phase speeds up by more than 1.3x at 4 threads. The gate
#   auto-skips when the hardware-metadata row the benches emit reports
#   nprocs_online <= 2 (e.g. the 1-CPU container the committed baselines
#   were recorded on) — a machine that cannot run 4 threads concurrently
#   cannot express the speedup, and a failure there would only measure
#   scheduler noise.
#
# --gate-shard: after the run, assert from BENCH_shard.json that (a) every
#   sharded run's output was byte-identical to the monolithic run — checked
#   on every machine, no exceptions — and (b) the 4-shard run at 4 threads
#   beat the monolithic run by more than 1.3x. The speedup half follows the
#   same convention as --gate-speedup: it auto-skips when nprocs_online <= 2.
#
# --gate-kernels: after the run, assert from BENCH_strsim.json that the
#   Myers bit-parallel Levenshtein kernel is at least 2x faster than the
#   scalar row DP on the recorded title-length workload. Auto-skips when
#   the bench's simd_dispatch context reports "scalar" (the kernels are
#   compiled out or forced off there, so the rows measure the same code).
#   Unlike the thread gates this one is single-threaded, so it runs fine
#   on 1-CPU machines.
#
# Honors RECON_BENCH_SCALE / RECON_BENCH_THREADS like the benches do.

set -euo pipefail

GATE_SPEEDUP=0
GATE_SHARD=0
GATE_KERNELS=0
while [[ "${1:-}" == --gate-* ]]; do
  case "$1" in
    --gate-speedup) GATE_SPEEDUP=1 ;;
    --gate-shard) GATE_SHARD=1 ;;
    --gate-kernels) GATE_KERNELS=1 ;;
  esac
  shift
done

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
BENCH_DIR="${BUILD_DIR}/bench"

if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: ${BENCH_DIR} not found; build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

status=0
for bench in "${BENCH_DIR}"/perf_*; do
  [[ -x "${bench}" ]] || continue
  name="$(basename "${bench}")"
  out="${OUT_DIR}/BENCH_${name#perf_}.json"
  echo "== ${name} -> ${out}"
  if ! "${bench}" --json "${out}"; then
    echo "error: ${name} failed" >&2
    status=1
    continue
  fi
  # Every result file must record the hardware it was produced on
  # ("hardware_concurrency" from JsonLog, "num_cpus" from google-benchmark),
  # so caveats like "1-CPU container, speedups ~1x" are machine-checkable.
  if ! grep -qE '"(hardware_concurrency|num_cpus)"' "${out}"; then
    echo "error: ${out} lacks hardware metadata" >&2
    status=1
  fi
done

if [[ ${GATE_SPEEDUP} -eq 1 && ${status} -eq 0 ]]; then
  scaling="${OUT_DIR}/BENCH_scaling.json"
  echo "== gate: commit speedup > 1.3x at 4 threads (${scaling})"
  if ! python3 - "${scaling}" <<'PYEOF'
import json, sys

rows = json.load(open(sys.argv[1]))
meta = next((r for r in rows if "nprocs_online" in r), None)
if meta is None:
    sys.exit("gate: no hardware-metadata row in BENCH_scaling.json")
nprocs = int(meta["nprocs_online"])
if nprocs <= 2:
    print(f"gate: SKIPPED — nprocs_online={nprocs}; a machine with <= 2 "
          "online CPUs cannot run the 4-thread commit concurrently, so the "
          "speedup gate would only measure scheduler noise")
    sys.exit(0)
solve4 = [r for r in rows
          if r.get("section") == "solve" and r.get("threads") == 4]
if not solve4:
    sys.exit("gate: no threads=4 solve row in BENCH_scaling.json")
worst = min(float(r["commit_speedup"]) for r in solve4)
if worst > 1.3:
    print(f"gate: PASS — commit speedup {worst:.2f}x > 1.3x at 4 threads "
          f"(nprocs_online={nprocs})")
else:
    sys.exit(f"gate: FAIL — commit speedup {worst:.2f}x <= 1.3x at 4 "
             f"threads (nprocs_online={nprocs})")
PYEOF
  then
    status=1
  fi
fi

if [[ ${GATE_SHARD} -eq 1 && ${status} -eq 0 ]]; then
  shard="${OUT_DIR}/BENCH_shard.json"
  echo "== gate: shard identity (always) + speedup > 1.3x at 4 shards (${shard})"
  if ! python3 - "${shard}" <<'PYEOF'
import json, sys

rows = json.load(open(sys.argv[1]))
shard_rows = [r for r in rows if r.get("section") == "shard"]
if not shard_rows:
    sys.exit("gate: no shard rows in BENCH_shard.json")

# Identity is unconditional: a machine that cannot express the speedup can
# still (and must) produce the byte-identical output.
broken = [r for r in shard_rows if r.get("identical") != "true"]
if broken:
    sys.exit("gate: FAIL — sharded output differed from the monolithic run "
             f"at shards={[r.get('shards') for r in broken]}")
print(f"gate: identity PASS — {len(shard_rows)} sharded runs byte-identical")

meta = next((r for r in rows if "nprocs_online" in r), None)
if meta is None:
    sys.exit("gate: no hardware-metadata row in BENCH_shard.json")
nprocs = int(meta["nprocs_online"])
if nprocs <= 2:
    print(f"gate: speedup SKIPPED — nprocs_online={nprocs}; a machine with "
          "<= 2 online CPUs cannot run the shard lanes concurrently, so the "
          "speedup gate would only measure scheduler noise")
    sys.exit(0)
four = [r for r in shard_rows
        if r.get("shards") == 4 and r.get("threads") == 4]
if not four:
    sys.exit("gate: no shards=4 threads=4 row in BENCH_shard.json")
worst = min(float(r["shard_speedup"]) for r in four)
if worst > 1.3:
    print(f"gate: speedup PASS — shard speedup {worst:.2f}x > 1.3x at 4 "
          f"shards (nprocs_online={nprocs})")
else:
    sys.exit(f"gate: FAIL — shard speedup {worst:.2f}x <= 1.3x at 4 shards "
             f"(nprocs_online={nprocs})")
PYEOF
  then
    status=1
  fi
fi

if [[ ${GATE_KERNELS} -eq 1 && ${status} -eq 0 ]]; then
  strsim="${OUT_DIR}/BENCH_strsim.json"
  echo "== gate: bit-parallel Levenshtein >= 2x scalar (${strsim})"
  if ! python3 - "${strsim}" <<'PYEOF'
import json, sys

doc = json.load(open(sys.argv[1]))
context = doc.get("context", {})
dispatch = context.get("simd_dispatch")
if dispatch is None:
    sys.exit("gate: no simd_dispatch entry in BENCH_strsim.json context")
if dispatch == "scalar":
    print("gate: SKIPPED — simd_dispatch=scalar (detected "
          f"{context.get('simd_detected', 'unknown')}); the bit-parallel "
          "kernels are not active at this dispatch level, so the rows "
          "measure the same reference code")
    sys.exit(0)

def cpu_time(name):
    rows = [b for b in doc.get("benchmarks", [])
            if b.get("name") == name and b.get("run_type", "iteration") ==
            "iteration"]
    if not rows:
        sys.exit(f"gate: no {name} row in BENCH_strsim.json")
    return min(float(r["cpu_time"]) for r in rows)

scalar = cpu_time("BM_LevenshteinScalar")
bitpar = cpu_time("BM_LevenshteinBitParallel")
speedup = scalar / bitpar if bitpar > 0 else float("inf")
if speedup >= 2.0:
    print(f"gate: PASS — bit-parallel Levenshtein {speedup:.2f}x faster "
          f"than scalar ({scalar:.0f} ns vs {bitpar:.0f} ns, "
          f"dispatch={dispatch})")
else:
    sys.exit(f"gate: FAIL — bit-parallel Levenshtein only {speedup:.2f}x "
             f"faster than scalar ({scalar:.0f} ns vs {bitpar:.0f} ns, "
             f"dispatch={dispatch}; need >= 2x)")
PYEOF
  then
    status=1
  fi
fi

exit ${status}
