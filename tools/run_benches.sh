#!/usr/bin/env bash
# Runs every perf_* bench with --json and collects BENCH_<name>.json files
# so perf trajectories can be tracked across commits.
#
# Usage: tools/run_benches.sh [--gate-speedup] [build_dir] [out_dir]
#   build_dir  defaults to build (must already be built)
#   out_dir    defaults to the current directory
#
# --gate-speedup: after the run, assert from BENCH_scaling.json that the
#   solve commit phase speeds up by more than 1.3x at 4 threads. The gate
#   auto-skips when the hardware-metadata row the benches emit reports
#   nprocs_online <= 2 (e.g. the 1-CPU container the committed baselines
#   were recorded on) — a machine that cannot run 4 threads concurrently
#   cannot express the speedup, and a failure there would only measure
#   scheduler noise.
#
# Honors RECON_BENCH_SCALE / RECON_BENCH_THREADS like the benches do.

set -euo pipefail

GATE_SPEEDUP=0
if [[ "${1:-}" == "--gate-speedup" ]]; then
  GATE_SPEEDUP=1
  shift
fi

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
BENCH_DIR="${BUILD_DIR}/bench"

if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: ${BENCH_DIR} not found; build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

status=0
for bench in "${BENCH_DIR}"/perf_*; do
  [[ -x "${bench}" ]] || continue
  name="$(basename "${bench}")"
  out="${OUT_DIR}/BENCH_${name#perf_}.json"
  echo "== ${name} -> ${out}"
  if ! "${bench}" --json "${out}"; then
    echo "error: ${name} failed" >&2
    status=1
    continue
  fi
  # Every result file must record the hardware it was produced on
  # ("hardware_concurrency" from JsonLog, "num_cpus" from google-benchmark),
  # so caveats like "1-CPU container, speedups ~1x" are machine-checkable.
  if ! grep -qE '"(hardware_concurrency|num_cpus)"' "${out}"; then
    echo "error: ${out} lacks hardware metadata" >&2
    status=1
  fi
done

if [[ ${GATE_SPEEDUP} -eq 1 && ${status} -eq 0 ]]; then
  scaling="${OUT_DIR}/BENCH_scaling.json"
  echo "== gate: commit speedup > 1.3x at 4 threads (${scaling})"
  if ! python3 - "${scaling}" <<'PYEOF'
import json, sys

rows = json.load(open(sys.argv[1]))
meta = next((r for r in rows if "nprocs_online" in r), None)
if meta is None:
    sys.exit("gate: no hardware-metadata row in BENCH_scaling.json")
nprocs = int(meta["nprocs_online"])
if nprocs <= 2:
    print(f"gate: SKIPPED — nprocs_online={nprocs}; a machine with <= 2 "
          "online CPUs cannot run the 4-thread commit concurrently, so the "
          "speedup gate would only measure scheduler noise")
    sys.exit(0)
solve4 = [r for r in rows
          if r.get("section") == "solve" and r.get("threads") == 4]
if not solve4:
    sys.exit("gate: no threads=4 solve row in BENCH_scaling.json")
worst = min(float(r["commit_speedup"]) for r in solve4)
if worst > 1.3:
    print(f"gate: PASS — commit speedup {worst:.2f}x > 1.3x at 4 threads "
          f"(nprocs_online={nprocs})")
else:
    sys.exit(f"gate: FAIL — commit speedup {worst:.2f}x <= 1.3x at 4 "
             f"threads (nprocs_online={nprocs})")
PYEOF
  then
    status=1
  fi
fi

exit ${status}
