#!/usr/bin/env bash
# Runs every perf_* bench with --json and collects BENCH_<name>.json files
# so perf trajectories can be tracked across commits.
#
# Usage: tools/run_benches.sh [build_dir] [out_dir]
#   build_dir  defaults to build (must already be built)
#   out_dir    defaults to the current directory
#
# Honors RECON_BENCH_SCALE / RECON_BENCH_THREADS like the benches do.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
BENCH_DIR="${BUILD_DIR}/bench"

if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: ${BENCH_DIR} not found; build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

status=0
for bench in "${BENCH_DIR}"/perf_*; do
  [[ -x "${bench}" ]] || continue
  name="$(basename "${bench}")"
  out="${OUT_DIR}/BENCH_${name#perf_}.json"
  echo "== ${name} -> ${out}"
  if ! "${bench}" --json "${out}"; then
    echo "error: ${name} failed" >&2
    status=1
    continue
  fi
  # Every result file must record the hardware it was produced on
  # ("hardware_concurrency" from JsonLog, "num_cpus" from google-benchmark),
  # so caveats like "1-CPU container, speedups ~1x" are machine-checkable.
  if ! grep -qE '"(hardware_concurrency|num_cpus)"' "${out}"; then
    echo "error: ${out} lacks hardware metadata" >&2
    status=1
  fi
done

exit ${status}
