// Developer tool: IndepDec vs DepGraph per class on the Cora generator,
// plus venue-mention diagnostics. Usage: cora_check [num_papers] [cites]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace recon;
  datagen::CoraConfig config;
  if (argc > 1) config.num_papers = atoi(argv[1]);
  if (argc > 2) config.num_citations = atoi(argv[2]);
  const Dataset data = datagen::GenerateCora(config);

  const IndepDec indep;
  const ReconcileResult ri = indep.Run(data);
  const Reconciler dep(ReconcilerOptions::DepGraph());
  const ReconcileResult rd = dep.Run(data);
  for (const char* cls : {"Person", "Article", "Venue"}) {
    const int id = data.schema().RequireClass(cls);
    const PairMetrics mi = EvaluateClass(data, ri.cluster, id);
    const PairMetrics md = EvaluateClass(data, rd.cluster, id);
    std::printf(
        "%-8s indep P=%.3f R=%.3f F=%.3f (par %d/%d)   "
        "dep P=%.3f R=%.3f F=%.3f (par %d)\n",
        cls, mi.precision, mi.recall, mi.f1, mi.num_partitions,
        mi.num_entities, md.precision, md.recall, md.f1, md.num_partitions);
  }

  // Show the venue strings of the largest gold venue entity to eyeball
  // the rendering diversity.
  const int venue = data.schema().RequireClass("Venue");
  std::map<int, std::set<std::string>> strings_of;
  std::map<int, int> count_of;
  const int name_attr = data.schema().RequireAttribute(venue, "name");
  for (const RefId id : data.ReferencesOfClass(venue)) {
    strings_of[data.gold_entity(id)].insert(
        data.reference(id).FirstValue(name_attr));
    ++count_of[data.gold_entity(id)];
  }
  int best = -1;
  for (const auto& [gold, n] : count_of) {
    if (best < 0 || n > count_of[best]) best = gold;
  }
  std::printf("\nLargest venue entity (%d mentions) rendered as:\n",
              count_of[best]);
  int shown = 0;
  for (const auto& s : strings_of[best]) {
    if (shown++ >= 10) break;
    std::printf("  '%s'\n", s.c_str());
  }
  return 0;
}
