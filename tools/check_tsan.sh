#!/usr/bin/env bash
# One-command race + determinism check for the parallel subsystems
# (src/runtime/ and the wavefront fixed-point solver, DESIGN.md §9):
#
#   1. configures and builds build-tsan/ with -DRECON_SANITIZE=thread,
#   2. runs every ctest target labeled `tsan` under ThreadSanitizer
#      (runtime primitives, evidence-cache parity, the shared value-store /
#      similarity-memo sweep with the store on and off, the
#      parallel-solver sweep that asserts byte-identical output at
#      1/2/4/8 threads, the canopy-shard sweep (shard-parallel staging
#      must stay byte-identical to the monolithic run, DESIGN.md §14),
#      the service-layer sweep where query threads
#      race a live ingest/flush loop against the snapshot swap, and the
#      crash-recovery sweep whose replay must stay byte-identical across
#      recovery thread counts, DESIGN.md §15),
#   3. re-runs the determinism sweeps in the regular (uninstrumented) build
#      when one exists — TSan's memory model can hide orderings that the
#      native build exhibits, so both must pass.
#
# Usage: tools/check_tsan.sh [tsan_build_dir] [native_build_dir]
#   tsan_build_dir    defaults to build-tsan (created if missing)
#   native_build_dir  defaults to build (step 3 is skipped if missing)

set -euo pipefail

TSAN_DIR="${1:-build-tsan}"
NATIVE_DIR="${2:-build}"

echo "== [1/3] configure + build ${TSAN_DIR} (-DRECON_SANITIZE=thread)"
cmake -B "${TSAN_DIR}" -S . -DRECON_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${TSAN_DIR}" -j

echo
echo "== [2/3] ctest -L tsan under ThreadSanitizer"
# halt_on_error: a race is a hard failure, not a log line.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  ctest --test-dir "${TSAN_DIR}" -L tsan --output-on-failure

echo
if [[ -d "${NATIVE_DIR}/tests" ]]; then
  echo "== [3/3] determinism sweeps in native build ${NATIVE_DIR}"
  ctest --test-dir "${NATIVE_DIR}" \
    -R 'SolverParallelTest|GraphCsrTest|ValueStoreTest|ServiceTest|ShardEquivalenceTest|RecoveryTest' \
    --output-on-failure
else
  echo "== [3/3] skipped: ${NATIVE_DIR} not built"
fi

echo
echo "OK: tsan-labeled tests race-free and parallel output byte-identical."
