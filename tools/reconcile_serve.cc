// Reconciliation daemon: load a dataset, reconcile it, and serve the
// OpenRefine-compatible reconciliation API over HTTP (DESIGN.md §12).
//
//   reconcile_serve dataset.txt --port 8080
//   reconcile_serve --demo --port 0        # synthetic dataset, ephemeral port
//
// Endpoints: /  /reconcile  /ingest  /entity/<id>  /healthz  /stats.
// The bound port is printed on startup ("listening on port N"), which is
// how scripts using --port 0 find the server. SIGINT / SIGTERM stop it.
//
// Exit codes: 0 clean shutdown, 2 usage error, 3 load failure, 4 bind
// failure.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "datagen/pim_generator.h"
#include "model/text_io.h"
#include "runtime/thread_pool.h"
#include "service/handlers.h"
#include "service/http.h"
#include "service/service.h"
#include "util/version.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitLoad = 3;
constexpr int kExitBind = 4;

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

void PrintUsage(std::ostream& out) {
  out << "usage: reconcile_serve [options] <dataset file>\n"
         "       reconcile_serve [options] --demo\n"
         "\n"
         "  <dataset file>     dataset in the text format of model/text_io.h\n"
         "  --demo             serve a small synthetic PIM dataset instead\n"
         "  --port N           listen port (default 8080; 0 = ephemeral,\n"
         "                     printed on startup)\n"
         "  --threads N        HTTP worker threads (default: hardware)\n"
         "  --deadline-ms MS   per-request query deadline; overloaded\n"
         "                     requests degrade to partial candidate lists\n"
         "                     (default 0 = unlimited)\n"
         "  --flush-deadline-ms MS  budget per ingest flush (default 0)\n"
         "  --help             this text\n"
         "  --version          print version and exit\n";
}

bool ParseInt(const char* flag, const char* value, int min, int* out) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < min || v > 1 << 30) {
    std::cerr << flag << " needs an integer >= " << min << ", got \"" << value
              << "\"\n";
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recon;

  std::string path;
  bool demo = false;
  int port = 8080;
  int threads = runtime::ThreadPool::HardwareConcurrency();
  service::ServiceOptions options;
  options.reconciler = ReconcilerOptions::DepGraph();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return kExitOk;
    }
    if (arg == "--version") {
      std::cout << ReconBuildInfo() << "\n";
      return kExitOk;
    }
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--port" && i + 1 < argc) {
      if (!ParseInt("--port", argv[++i], 0, &port)) return kExitUsage;
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!ParseInt("--threads", argv[++i], 1, &threads)) return kExitUsage;
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      int ms = 0;
      if (!ParseInt("--deadline-ms", argv[++i], 1, &ms)) return kExitUsage;
      options.query_deadline_ms = ms;
    } else if (arg == "--flush-deadline-ms" && i + 1 < argc) {
      int ms = 0;
      if (!ParseInt("--flush-deadline-ms", argv[++i], 1, &ms)) {
        return kExitUsage;
      }
      options.reconciler.budget.deadline_ms = ms;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      return kExitUsage;
    }
  }
  if (demo != path.empty()) {  // Exactly one of --demo / file required.
    PrintUsage(std::cerr);
    return kExitUsage;
  }

  Dataset data(BuildPimSchema());
  if (demo) {
    datagen::PimConfig config = datagen::PimConfigA();
    data = datagen::GeneratePim(datagen::ScaleConfig(config, 0.05));
    std::cout << "Generated demo dataset: " << data.num_references()
              << " references.\n";
  } else {
    StatusOr<Dataset> loaded = LoadDatasetFromFile(path);
    if (!loaded.ok()) {
      std::cerr << "cannot load " << path << ": " << loaded.status().ToString()
                << "\n";
      return kExitLoad;
    }
    data = std::move(loaded).value();
    std::cout << "Loaded " << data.num_references() << " references from "
              << path << ".\n";
  }

  std::cout << "Reconciling initial dataset...\n";
  service::ReconService service(std::move(data), options);
  const auto snapshot = service.snapshot();
  std::cout << "Snapshot generation 0: " << snapshot->num_entities()
            << " entities from " << snapshot->num_references()
            << " references.\n";

  service::ServiceHandler handler(&service);
  service::HttpServer server(
      [&handler](const service::HttpRequest& req) {
        return handler.Handle(req);
      },
      threads);
  const Status started = server.Start(port);
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return kExitBind;
  }
  std::cout << ReconBuildInfo() << "\n"
            << "listening on port " << server.port() << " (" << threads
            << " worker threads)\n"
            << std::flush;

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  sigset_t empty;
  sigemptyset(&empty);
  while (!g_stop) sigsuspend(&empty);

  std::cout << "shutting down\n";
  server.Stop();
  return kExitOk;
}
