// Reconciliation daemon: load a dataset, reconcile it, and serve the
// OpenRefine-compatible reconciliation API over HTTP (DESIGN.md §12, §15).
//
//   reconcile_serve dataset.txt --port 8080
//   reconcile_serve --demo --port 0        # synthetic dataset, ephemeral port
//   reconcile_serve --demo --data-dir /var/lib/recon   # durable: WAL +
//                                          # checkpoints, crash-safe restart
//   reconcile_serve --data-dir /var/lib/recon          # restart: recovers
//                                          # from the surviving state alone
//
// Endpoints: /  /reconcile  /ingest  /entity/<id>  /healthz  /stats.
// The bound port is printed on startup ("listening on port N"), which is
// how scripts using --port 0 find the server. SIGINT / SIGTERM drain
// in-flight requests, seal the WAL, and exit 0.
//
// Exit codes: 0 clean shutdown, 2 usage error, 3 load failure, 4 bind
// failure, 5 unusable --data-dir (unwritable or corrupt beyond recovery).

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "datagen/pim_generator.h"
#include "model/text_io.h"
#include "runtime/thread_pool.h"
#include "service/handlers.h"
#include "service/http.h"
#include "service/service.h"
#include "util/version.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitLoad = 3;
constexpr int kExitBind = 4;
constexpr int kExitData = 5;

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

void PrintUsage(std::ostream& out) {
  out << "usage: reconcile_serve [options] <dataset file>\n"
         "       reconcile_serve [options] --demo\n"
         "       reconcile_serve [options] --data-dir DIR   # recover\n"
         "\n"
         "  <dataset file>     dataset in the text format of model/text_io.h\n"
         "  --demo             serve a small synthetic PIM dataset instead\n"
         "  --port N           listen port (default 8080; 0 = ephemeral,\n"
         "                     printed on startup)\n"
         "  --threads N        HTTP worker threads (default: hardware)\n"
         "  --deadline-ms MS   per-request query deadline; overloaded\n"
         "                     requests degrade to partial candidate lists\n"
         "                     (default 0 = unlimited)\n"
         "  --flush-deadline-ms MS  budget per ingest flush (default 0)\n"
         "\n"
         "durability (DESIGN.md §15):\n"
         "  --data-dir DIR     write-ahead log + checkpoints in DIR; on\n"
         "                     restart the service recovers from DIR and\n"
         "                     the dataset/--demo argument may be omitted\n"
         "  --fsync POLICY     every-record | every-flush | none\n"
         "                     (default every-flush)\n"
         "  --checkpoint-every N  checkpoint + rotate the WAL every N\n"
         "                     flushes (default 64; 0 = never)\n"
         "\n"
         "overload protection:\n"
         "  --max-inflight N   admission bound; above it requests are shed\n"
         "                     with 503 + Retry-After (default 4x threads;\n"
         "                     0 = unbounded)\n"
         "  --recv-timeout-ms MS  per-connection socket read timeout\n"
         "                     (default 10000)\n"
         "  --max-body-bytes N max accepted request body (default 8MiB)\n"
         "\n"
         "  --help             this text\n"
         "  --version          print version and exit\n";
}

bool ParseInt(const char* flag, const char* value, int min, int* out) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < min || v > 1 << 30) {
    std::cerr << flag << " needs an integer >= " << min << ", got \"" << value
              << "\"\n";
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recon;

  std::string path;
  bool demo = false;
  int port = 8080;
  int threads = runtime::ThreadPool::HardwareConcurrency();
  service::ServiceOptions options;
  options.reconciler = ReconcilerOptions::DepGraph();
  service::HttpServerOptions http_options;
  int max_inflight = -1;  // -1 = default to 4x threads.

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return kExitOk;
    }
    if (arg == "--version") {
      std::cout << ReconBuildInfo() << "\n";
      return kExitOk;
    }
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--port" && i + 1 < argc) {
      if (!ParseInt("--port", argv[++i], 0, &port)) return kExitUsage;
    } else if (arg == "--threads" && i + 1 < argc) {
      if (!ParseInt("--threads", argv[++i], 1, &threads)) return kExitUsage;
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      int ms = 0;
      if (!ParseInt("--deadline-ms", argv[++i], 1, &ms)) return kExitUsage;
      options.query_deadline_ms = ms;
    } else if (arg == "--flush-deadline-ms" && i + 1 < argc) {
      int ms = 0;
      if (!ParseInt("--flush-deadline-ms", argv[++i], 1, &ms)) {
        return kExitUsage;
      }
      options.reconciler.budget.deadline_ms = ms;
    } else if (arg == "--data-dir" && i + 1 < argc) {
      options.durability.data_dir = argv[++i];
    } else if (arg == "--fsync" && i + 1 < argc) {
      StatusOr<service::FsyncPolicy> policy =
          service::ParseFsyncPolicy(argv[++i]);
      if (!policy.ok()) {
        std::cerr << policy.status().message() << "\n";
        return kExitUsage;
      }
      options.durability.fsync = policy.value();
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      if (!ParseInt("--checkpoint-every", argv[++i], 0,
                    &options.durability.checkpoint_every)) {
        return kExitUsage;
      }
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      if (!ParseInt("--max-inflight", argv[++i], 0, &max_inflight)) {
        return kExitUsage;
      }
    } else if (arg == "--recv-timeout-ms" && i + 1 < argc) {
      if (!ParseInt("--recv-timeout-ms", argv[++i], 1,
                    &http_options.recv_timeout_ms)) {
        return kExitUsage;
      }
    } else if (arg == "--max-body-bytes" && i + 1 < argc) {
      int bytes = 0;
      if (!ParseInt("--max-body-bytes", argv[++i], 1, &bytes)) {
        return kExitUsage;
      }
      http_options.max_body_bytes = static_cast<size_t>(bytes);
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      return kExitUsage;
    }
  }
  // A dataset source is required unless a data dir can supply the state.
  const bool durable = !options.durability.data_dir.empty();
  if (demo && !path.empty()) {
    PrintUsage(std::cerr);
    return kExitUsage;
  }
  if (!demo && path.empty() && !durable) {
    PrintUsage(std::cerr);
    return kExitUsage;
  }

  Dataset data(BuildPimSchema());
  if (demo) {
    datagen::PimConfig config = datagen::PimConfigA();
    data = datagen::GeneratePim(datagen::ScaleConfig(config, 0.05));
    std::cout << "Generated demo dataset: " << data.num_references()
              << " references.\n";
  } else if (!path.empty()) {
    StatusOr<Dataset> loaded = LoadDatasetFromFile(path);
    if (!loaded.ok()) {
      std::cerr << "cannot load " << path << ": " << loaded.status().ToString()
                << "\n";
      return kExitLoad;
    }
    data = std::move(loaded).value();
    std::cout << "Loaded " << data.num_references() << " references from "
              << path << ".\n";
  }
  // else: bare --data-dir restart, schema-only dataset; recovery supplies
  // the references (an empty dir then just serves an empty generation 0).

  std::cout << (durable ? "Opening durable service...\n"
                        : "Reconciling initial dataset...\n");
  StatusOr<std::unique_ptr<service::ReconService>> opened =
      service::ReconService::Open(std::move(data), options);
  if (!opened.ok()) {
    std::cerr << "cannot open service: " << opened.status().ToString() << "\n";
    return opened.status().code() == StatusCode::kFailedPrecondition
               ? kExitData
               : kExitLoad;
  }
  std::unique_ptr<service::ReconService> service = std::move(opened).value();
  const auto snapshot = service->snapshot();
  const service::DurabilityStats durability = service->durability_stats();
  if (durability.recovered) {
    std::cout << "Recovered generation " << snapshot->generation() << " ("
              << (durability.recovered_clean ? "clean seal" : "crash tail")
              << "): replayed " << durability.replayed_epochs << " epochs, "
              << durability.replayed_references << " references";
    if (durability.wal_truncated_bytes > 0) {
      std::cout << ", truncated " << durability.wal_truncated_bytes
                << " torn bytes";
    }
    std::cout << ".\n";
  }
  std::cout << "Snapshot generation " << snapshot->generation() << ": "
            << snapshot->num_entities() << " entities from "
            << snapshot->num_references() << " references.\n";

  service::ServiceHandler handler(service.get());
  http_options.num_threads = threads;
  http_options.max_inflight = max_inflight >= 0 ? max_inflight : 4 * threads;
  service::HttpServer server(
      [&handler](const service::HttpRequest& req) {
        return handler.Handle(req);
      },
      http_options);
  const Status started = server.Start(port);
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return kExitBind;
  }
  std::cout << ReconBuildInfo() << "\n"
            << "listening on port " << server.port() << " (" << threads
            << " worker threads, max-inflight " << http_options.max_inflight;
  if (durable) {
    std::cout << ", data-dir " << options.durability.data_dir << ", fsync "
              << service::FsyncPolicyName(options.durability.fsync);
  }
  std::cout << ")\n" << std::flush;

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  sigset_t empty;
  sigemptyset(&empty);
  while (!g_stop) sigsuspend(&empty);

  // Graceful drain: stop accepting, finish every admitted request, then
  // seal the WAL so the next start knows the shutdown was clean.
  std::cout << "shutting down\n";
  server.Stop();
  const Status sealed = service->Seal();
  if (!sealed.ok()) {
    std::cerr << "wal seal failed: " << sealed.ToString() << "\n";
    return kExitData;
  }
  if (durable) {
    std::cout << "sealed wal at generation "
              << service->durability_stats().durable_generation << "\n";
  }
  return kExitOk;
}
