// Developer tool: prints wrongly merged reference pairs with their
// evidence breakdown. Usage:
//   debug_merges [A|B|C|D] [scale] [Person|Article|Venue] [dep|indep]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "sim/evidence.h"

using namespace recon;

int main(int argc, char** argv) {
  const char dataset_id = argc > 1 ? argv[1][0] : 'A';
  const double scale = argc > 2 ? atof(argv[2]) : 0.3;
  const std::string class_name = argc > 3 ? argv[3] : "Person";
  const bool use_indep = argc > 4 && strcmp(argv[4], "indep") == 0;

  datagen::PimConfig config = datagen::PimConfigA();
  if (dataset_id == 'B') config = datagen::PimConfigB();
  if (dataset_id == 'C') config = datagen::PimConfigC();
  if (dataset_id == 'D') config = datagen::PimConfigD();
  if (scale < 1.0) config = datagen::ScaleConfig(config, scale);
  const Dataset data = datagen::GeneratePim(config);
  const int class_id = data.schema().RequireClass(class_name);

  auto describe = [&](RefId id) {
    const Reference& r = data.reference(id);
    std::string out = "ref " + std::to_string(id) + " gold " +
                      std::to_string(data.gold_entity(id)) + ":";
    for (int attr = 0; attr < r.num_attributes(); ++attr) {
      for (const auto& v : r.atomic_values(attr)) {
        out += " '" + v + "'";
      }
    }
    return out;
  };

  if (use_indep) {
    const IndepDec indep;
    const ReconcileResult result = indep.Run(data);
    int shown = 0;
    for (const auto& [r1, r2] : result.merged_pairs) {
      if (data.reference(r1).class_id() != class_id) continue;
      if (data.gold_entity(r1) == data.gold_entity(r2)) continue;
      if (shown++ >= 12) break;
      printf("WRONG DIRECT MERGE:\n  %s\n  %s\n", describe(r1).c_str(),
             describe(r2).c_str());
    }
    printf("(%d wrong direct merges total)\n", [&] {
      int count = 0;
      for (const auto& [r1, r2] : result.merged_pairs) {
        if (data.reference(r1).class_id() == class_id &&
            data.gold_entity(r1) != data.gold_entity(r2)) {
          ++count;
        }
      }
      return count;
    }());
    return 0;
  }

  ReconcilerOptions opt = ReconcilerOptions::DepGraph();
  BuiltGraph built = BuildDependencyGraph(data, opt);
  const Reconciler rec(opt);
  rec.RunOnGraph(data, built);
  const auto& g = *built.graph;
  int shown = 0;
  for (NodeId id = 0; id < g.num_nodes(); ++id) {
    const Node& n = g.node(id);
    if (n.dead || !n.IsRefPair() || n.state != NodeState::kMerged) continue;
    if (n.class_id != class_id) continue;
    const int ga = data.gold_entity(n.a);
    const int gb = data.gold_entity(n.b);
    if (ga == gb || shown++ >= 8) continue;
    printf("WRONG MERGE sim=%.3f\n  %s\n  %s\n", n.sim,
           describe(n.a).c_str(), describe(n.b).c_str());
    for (const auto& [t, s] : g.static_real(id)) {
      printf("  static ev=%s sim=%.2f\n", EvidenceName(t), s);
    }
    int strong = 0;
    int weak = 0;
    for (const auto& e : g.in_edges(id)) {
      const Node& src = g.node(e.node);
      if (e.kind == DependencyKind::kRealValued) {
        printf("  in ev=%s sim=%.2f%s\n", EvidenceName(e.evidence), src.sim,
               src.state == NodeState::kMerged ? " (merged)" : "");
      } else if (src.state == NodeState::kMerged) {
        (e.kind == DependencyKind::kStrongBoolean ? strong : weak) += 1;
      }
    }
    printf("  merged strong=%d weak=%d static_strong=%d static_weak=%d\n",
           strong, weak, n.static_strong, n.static_weak);
  }
  return 0;
}
