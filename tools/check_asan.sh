#!/usr/bin/env bash
# One-command memory-safety check for the robustness surfaces (DESIGN.md
# §10–§11): budget exhaustion / cancellation / fault-injected degradation,
# the malformed-input extraction paths (truncated BibTeX, garbled email,
# NUL-ridden CSV), the value-store / similarity-memo degradation modes
# (shard eviction and bypass under tiny byte bounds), the CSR-graph
# determinism sweep (datasets × threads × cache/constraints/budgets
# against committed golden fingerprints, rollback-and-replay and frozen
# budget stops included), the canopy-shard layer (shard-vs-monolithic
# byte-identity across shards × threads, DESIGN.md §14), the service smoke
# test (a live daemon on an ephemeral loopback port serving query, ingest,
# malformed-request, and overload traffic end-to-end over HTTP, plus a
# SIGTERM drain of the real binary), and the crash-recovery sweep (WAL +
# checkpoint recovery across every injected I/O fault point, fault kind,
# and thread count, DESIGN.md §15 — tools/check_crash.sh adds a live
# kill -9 soak on top):
#
#   1. configures and builds build-asan/ with
#      -DRECON_SANITIZE=address-undefined (ASan + UBSan together),
#   2. runs every ctest target labeled `asan` under the sanitizers —
#      every StopReason at every probe point, the hostile-input corpus,
#      and the value-store sweep with the store on and off — with error
#      exit codes forced on.
#
# Usage: tools/check_asan.sh [asan_build_dir]
#   asan_build_dir  defaults to build-asan (created if missing)

set -euo pipefail

ASAN_DIR="${1:-build-asan}"

echo "== [1/2] configure + build ${ASAN_DIR} (-DRECON_SANITIZE=address-undefined)"
cmake -B "${ASAN_DIR}" -S . -DRECON_SANITIZE=address-undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${ASAN_DIR}" -j

echo
echo "== [2/2] ctest -L asan under AddressSanitizer + UBSan"
# halt_on_error: any finding is a hard failure, not a log line.
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}" \
  ctest --test-dir "${ASAN_DIR}" -L asan --output-on-failure

echo
echo "OK: asan-labeled tests clean under ASan + UBSan."
