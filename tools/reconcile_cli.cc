// Command-line reconciler: load a dataset file (see model/text_io.h for
// the format, or produce one with --demo) or import raw sources
// (CSV / BibTeX / mbox), run DepGraph or IndepDec, and print the
// resulting partitions (plus accuracy when gold labels exist).
//
// Usage: see PrintUsage() below (reconcile_cli --help).
//
// Exit codes — each failure family gets its own, so scripts can branch
// without parsing stderr:
//   0  success
//   2  usage error (unknown flag, bad flag value, missing input)
//   3  file I/O failure (input unreadable, --demo output unwritable)
//   4  dataset file parse failure
//   5  CSV import failure
//   6  BibTeX parse failure
//   7  email (mbox) parse failure
// Every failure prints a one-line diagnostic to stderr.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "baseline/fellegi_sunter.h"
#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "core/schema_binding.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "extract/csv_import.h"
#include "extract/extractor.h"
#include "model/text_io.h"
#include "shard/sharded_reconciler.h"
#include "strsim/simd_dispatch.h"
#include "util/string_util.h"
#include "util/version.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;
constexpr int kExitFileIo = 3;
constexpr int kExitDatasetParse = 4;
constexpr int kExitCsvImport = 5;
constexpr int kExitBibtexParse = 6;
constexpr int kExitEmailParse = 7;

void PrintUsage(std::ostream& out) {
  out << "usage: reconcile_cli [options] <input file>\n"
         "       reconcile_cli --demo <out file>\n"
         "\n"
         "input:\n"
         "  <input file>            dataset in the text format of "
         "model/text_io.h\n"
         "  --import csv|bibtex|mbox  treat <input file> as raw sources:\n"
         "                          csv    person rows: name,email[,gold]\n"
         "                          bibtex article/venue/author references\n"
         "                          mbox   person references per "
         "participant\n"
         "  --demo <out file>       write a small synthetic PIM dataset and "
         "exit\n"
         "  --scale X               size multiplier for the --demo generator\n"
         "                          (default 0.03; 1 = the paper's PIM "
         "corpus,\n"
         "                          larger values scale past it)\n"
         "\n"
         "algorithm:\n"
         "  --algo depgraph|indepdec|fs   (default depgraph)\n"
         "  --no-constraints        disable constraint enforcement (ablation)\n"
         "  --evidence attr|ne|article|contact   evidence level (ablation)\n"
         "  --canopies              canopy clustering instead of blocking\n"
         "  --no-value-store        score from raw strings instead of the\n"
         "                          interned value store (DESIGN.md §11);\n"
         "                          output is byte-identical either way\n"
         "  --no-simd               force the scalar string kernels and\n"
         "                          disable the signature prefilter\n"
         "                          (DESIGN.md §16); output is\n"
         "                          byte-identical either way. RECON_SIMD\n"
         "                          =scalar|generic|sse42|avx2 also clamps\n"
         "                          the dispatch level\n"
         "  --threads N             worker threads (0 = all hardware "
         "threads);\n"
         "                          output is byte-identical for every N\n"
         "  --shards N              canopy-sharded staging (depgraph only,\n"
         "                          DESIGN.md §14): stage evidence in N\n"
         "                          shards + a boundary pass, then solve\n"
         "                          canonically; byte-identical for every N\n"
         "\n"
         "execution budget (DESIGN.md §10) — on exhaustion the run "
         "never aborts;\n"
         "it degrades to a valid partial result and reports the stop "
         "reason:\n"
         "  --deadline-ms MS        wall-clock deadline for the whole run\n"
         "  --max-solver-iterations N   cap on fixed-point iterations\n"
         "  --max-merges N          cap on merges\n"
         "\n"
         "  --help                  this text\n"
         "  --version               print version and exit\n";
}

int Demo(const std::string& path, double scale) {
  recon::datagen::PimConfig config = recon::datagen::PimConfigA();
  config = recon::datagen::ScaleConfig(config, scale);
  const recon::Dataset data = recon::datagen::GeneratePim(config);
  const recon::Status status = recon::SaveDatasetToFile(data, path);
  if (!status.ok()) {
    std::cerr << "cannot write " << path << ": " << status.ToString()
              << "\n";
    return kExitFileIo;
  }
  std::cout << "Wrote " << data.num_references() << " references to "
            << path << "\n";
  return kExitOk;
}

/// Reads a whole file; false (with a one-line stderr diagnostic) on I/O
/// failure.
bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    std::cerr << "read error on " << path << "\n";
    return false;
  }
  *out = buffer.str();
  return true;
}

/// Imports person rows (name,email[,gold]) from CSV text into a fresh PIM
/// dataset. Returns kExitOk or kExitCsvImport.
int ImportCsvFile(const std::string& text, recon::Dataset* out) {
  using recon::extract::CsvImportSpec;
  const recon::SchemaBinding binding =
      recon::SchemaBinding::Resolve(out->schema());
  CsvImportSpec spec;
  spec.class_id = binding.person;
  spec.column_to_attribute = {binding.person_name, binding.person_email};
  // A third header column carries integer gold labels.
  const auto rows = recon::extract::ParseCsv(text);
  if (!rows.empty() && rows.front().size() >= 3) spec.gold_column = 2;
  const recon::StatusOr<int> added =
      recon::extract::ImportCsv(text, spec, out);
  if (!added.ok()) {
    std::cerr << "csv import failed: " << added.status().ToString() << "\n";
    return kExitCsvImport;
  }
  std::cout << "Imported " << added.value() << " person references from "
            << "CSV.\n";
  return kExitOk;
}

/// Imports every BibTeX entry strictly: any malformed entry fails the run
/// (unlike ParseBibtexFile, which skips them) so corrupt inputs are
/// surfaced instead of silently shrinking the dataset.
int ImportBibtexFile(const std::string& text,
                     recon::extract::Extractor* extractor) {
  size_t pos = 0;
  int entries = 0;
  for (;;) {
    recon::StatusOr<recon::extract::BibtexEntry> entry =
        recon::extract::ParseNextBibtexEntry(text, &pos);
    if (!entry.ok()) {
      if (entry.status().code() == recon::StatusCode::kNotFound) break;
      std::cerr << "bibtex parse failed: " << entry.status().ToString()
                << "\n";
      return kExitBibtexParse;
    }
    extractor->AddBibtexEntry(entry.value());
    ++entries;
  }
  std::cout << "Imported " << entries << " BibTeX entries.\n";
  return kExitOk;
}

/// Imports an mbox strictly: any unparseable message fails the run
/// (unlike ParseMbox, which skips them).
int ImportMboxFile(const std::string& text,
                   recon::extract::Extractor* extractor) {
  std::vector<std::string> chunks;
  std::string current;
  for (const std::string& line : recon::Split(text, '\n')) {
    if (line.starts_with("From ")) {
      if (!current.empty()) chunks.push_back(current);
      current.clear();
      continue;
    }
    current += line;
    current += '\n';
  }
  if (!recon::TrimView(current).empty()) chunks.push_back(current);

  int messages = 0;
  for (const std::string& chunk : chunks) {
    recon::StatusOr<recon::extract::EmailMessage> parsed =
        recon::extract::ParseEmailMessage(chunk);
    if (!parsed.ok()) {
      std::cerr << "email parse failed (message " << (messages + 1)
                << "): " << parsed.status().ToString() << "\n";
      return kExitEmailParse;
    }
    extractor->AddMessage(parsed.value());
    ++messages;
  }
  std::cout << "Imported " << messages << " messages.\n";
  return kExitOk;
}

/// Parses a positive number flag value; false prints the diagnostic.
bool ParsePositive(const char* flag, const char* value, double* out) {
  char* end = nullptr;
  *out = std::strtod(value, &end);
  if (end == value || *end != '\0' || *out <= 0) {
    std::cerr << flag << " needs a positive number, got \"" << value
              << "\"\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recon;

  std::string path;
  std::string algo = "depgraph";
  std::string import_kind;
  std::string demo_path;
  double demo_scale = 0.03;
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return kExitOk;
    }
    if (arg == "--version") {
      std::cout << recon::ReconBuildInfo() << "\n";
      return kExitOk;
    }
    if (arg == "--demo" && i + 1 < argc) {
      demo_path = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      if (!ParsePositive("--scale", argv[++i], &demo_scale)) {
        return kExitUsage;
      }
    } else if (arg == "--shards" && i + 1 < argc) {
      char* end = nullptr;
      options.num_shards = static_cast<int>(std::strtol(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0' || options.num_shards < 1) {
        std::cerr << "--shards needs a count >= 1, got \"" << argv[i]
                  << "\"\n";
        return kExitUsage;
      }
    } else if (arg == "--algo" && i + 1 < argc) {
      algo = argv[++i];
    } else if (arg == "--no-constraints") {
      options.constraints = false;
    } else if (arg == "--canopies") {
      options.use_canopies = true;
    } else if (arg == "--no-value-store") {
      options.value_store = false;
    } else if (arg == "--no-simd") {
      recon::strsim::SetSimdLevel(recon::strsim::SimdLevel::kScalar);
    } else if (arg == "--import" && i + 1 < argc) {
      import_kind = argv[++i];
      if (import_kind != "csv" && import_kind != "bibtex" &&
          import_kind != "mbox") {
        std::cerr << "--import needs csv, bibtex, or mbox, got \""
                  << import_kind << "\"\n";
        return kExitUsage;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      options.num_threads = static_cast<int>(std::strtol(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0' || options.num_threads < 0) {
        std::cerr << "--threads needs a count >= 0 (0 = all hardware "
                     "threads), got \"" << argv[i] << "\"\n";
        return kExitUsage;
      }
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      if (!ParsePositive("--deadline-ms", argv[++i],
                         &options.budget.deadline_ms)) {
        return kExitUsage;
      }
    } else if (arg == "--max-solver-iterations" && i + 1 < argc) {
      double value = 0;
      if (!ParsePositive("--max-solver-iterations", argv[++i], &value)) {
        return kExitUsage;
      }
      options.budget.max_solver_iterations = static_cast<int64_t>(value);
    } else if (arg == "--max-merges" && i + 1 < argc) {
      double value = 0;
      if (!ParsePositive("--max-merges", argv[++i], &value)) {
        return kExitUsage;
      }
      options.budget.max_merges = static_cast<int64_t>(value);
    } else if (arg == "--evidence" && i + 1 < argc) {
      const std::string level = argv[++i];
      if (level == "attr") options.evidence_level = EvidenceLevel::kAttrWise;
      else if (level == "ne") options.evidence_level = EvidenceLevel::kNameEmail;
      else if (level == "article") options.evidence_level = EvidenceLevel::kArticle;
      else if (level == "contact") options.evidence_level = EvidenceLevel::kContact;
      else {
        std::cerr << "unknown evidence level " << level << "\n";
        return kExitUsage;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      return kExitUsage;
    }
  }
  if (!demo_path.empty()) return Demo(demo_path, demo_scale);
  if (path.empty()) {
    PrintUsage(std::cerr);
    return kExitUsage;
  }

  // Placeholder over a finalized schema; every path below replaces it.
  Dataset data(BuildPimSchema());
  if (import_kind.empty()) {
    StatusOr<Dataset> loaded = LoadDatasetFromFile(path);
    if (!loaded.ok()) {
      // The loader distinguishes unreadable files from malformed content.
      std::cerr << "cannot load " << path << ": "
                << loaded.status().ToString() << "\n";
      return loaded.status().code() == StatusCode::kNotFound
                 ? kExitFileIo
                 : kExitDatasetParse;
    }
    data = std::move(loaded).value();
  } else {
    std::string text;
    if (!ReadFile(path, &text)) return kExitFileIo;
    extract::Extractor extractor;
    if (import_kind == "csv") {
      Dataset imported(BuildPimSchema());
      const int rc = ImportCsvFile(text, &imported);
      if (rc != kExitOk) return rc;
      data = std::move(imported);
    } else {
      const int rc = import_kind == "bibtex"
                         ? ImportBibtexFile(text, &extractor)
                         : ImportMboxFile(text, &extractor);
      if (rc != kExitOk) return rc;
      data = extractor.TakeDataset();
    }
  }
  std::cout << "Loaded " << data.num_references() << " references, "
            << data.schema().num_classes() << " classes.\n";

  ReconcileResult result;
  if (algo == "indepdec") {
    const IndepDec reconciler(options);
    result = reconciler.Run(data);
  } else if (algo == "depgraph") {
    if (options.num_shards > 1) {
      result = shard::ShardedReconcile(data, options);
    } else {
      const Reconciler reconciler(options);
      result = reconciler.Run(data);
    }
  } else if (algo == "fs") {
    FellegiSunterOptions fs_options;
    fs_options.blocking = options;
    const FellegiSunter reconciler(fs_options);
    result = reconciler.Run(data);
  } else {
    std::cerr << "unknown algorithm " << algo << "\n";
    return kExitUsage;
  }

  for (int c = 0; c < data.schema().num_classes(); ++c) {
    const int refs = static_cast<int>(data.ReferencesOfClass(c).size());
    if (refs == 0) continue;
    std::cout << data.schema().class_def(c).name << ": " << refs
              << " references -> " << result.NumPartitionsOfClass(data, c)
              << " partitions";
    if (data.NumEntitiesOfClass(c) > 0) {
      const PairMetrics m =
          EvaluateClass(data, result.cluster, c, options.num_threads);
      std::cout << "  (gold: " << m.num_entities << " entities, P="
                << m.precision << " R=" << m.recall << " F=" << m.f1 << ")";
    }
    std::cout << "\n";
  }
  std::cout << "Graph: " << result.stats.num_nodes << " nodes, "
            << result.stats.num_merges << " merges; build "
            << result.stats.build_seconds << "s solve "
            << result.stats.solve_seconds << "s\n";
  if (result.stats.num_shards > 1) {
    std::cout << "Shards: " << result.stats.num_shards << " shards, "
              << result.stats.num_boundary_pairs << " boundary pairs; "
              << result.stats.num_shard_merges << " shard merges + "
              << result.stats.num_boundary_merges
              << " boundary merges; staging "
              << result.stats.shard_seconds << "s + boundary "
              << result.stats.boundary_seconds << "s\n";
  }
  if (result.stats.num_solver_rounds > 0) {
    std::cout << "Solve: " << result.stats.num_solver_rounds
              << " wavefront rounds; score "
              << result.stats.solve_score_seconds << "s (parallel) commit "
              << result.stats.solve_commit_seconds << "s; "
              << result.stats.num_score_hits << " hits / "
              << result.stats.num_serial_rescores << " re-scored\n";
    std::cout << "Commit: " << result.stats.num_wave_commits
              << " of " << result.stats.num_parallel_scored
              << " commits in " << result.stats.num_commit_waves
              << " parallel waves (" << result.stats.num_commit_regions
              << " regions, " << result.stats.num_commit_deferrals
              << " deferrals)\n";
  }
  if (result.stats.graph_bytes > 0) {
    std::cout << "Graph memory: " << result.stats.graph_bytes
              << " B (nodes " << result.stats.graph_node_bytes
              << " B, edges " << result.stats.graph_edge_bytes
              << " B, indices " << result.stats.graph_index_bytes << " B)\n";
  }
  if (algo == "depgraph" && result.stats.num_pair_comparisons > 0) {
    std::cout << "Scoring: " << result.stats.num_pair_comparisons
              << " pair comparisons, " << result.stats.num_value_analyses
              << " value analyses; memo " << result.stats.num_sim_memo_hits
              << " hits / " << result.stats.num_sim_memo_misses
              << " misses (" << result.stats.sim_memo_bytes
              << " B, store " << result.stats.value_store_bytes << " B)\n";
    std::cout << "Kernels: " << result.stats.simd_dispatch << " dispatch";
    if (result.stats.num_prefilter_skips +
            result.stats.num_prefilter_exact > 0) {
      std::cout << "; prefilter skipped " << result.stats.num_prefilter_skips
                << " of "
                << result.stats.num_prefilter_skips +
                       result.stats.num_prefilter_exact
                << " title comparisons (signatures "
                << result.stats.signature_bytes << " B)";
    }
    std::cout << "\n";
  }
  if (algo == "depgraph") {
    std::cout << "Stop: " << StopReasonToString(result.stats.stop_reason)
              << " after " << result.stats.solver_iterations
              << " iterations (" << result.stats.num_budget_probes
              << " budget probes)\n";
  }
  return kExitOk;
}
