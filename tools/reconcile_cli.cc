// Command-line reconciler: load a dataset file (see model/text_io.h for
// the format, or produce one with --demo), run DepGraph or IndepDec, and
// print the resulting partitions (plus accuracy when gold labels exist).
//
// Usage:
//   reconcile_cli --demo out.ds                  # write a demo dataset
//   reconcile_cli [--algo depgraph|indepdec|fs] [--no-constraints]
//                 [--evidence attr|ne|article|contact] [--canopies]
//                 [--threads N] <dataset file>
//
// --threads N runs candidate generation, pair scoring, and the fixed-point
// solve's wavefront rounds (DESIGN.md §9) on N threads (0 = all hardware
// threads); output is byte-identical for every value.

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "baseline/fellegi_sunter.h"
#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "model/text_io.h"

namespace {

int Demo(const std::string& path) {
  recon::datagen::PimConfig config = recon::datagen::PimConfigA();
  config = recon::datagen::ScaleConfig(config, 0.03);
  const recon::Dataset data = recon::datagen::GeneratePim(config);
  const recon::Status status = recon::SaveDatasetToFile(data, path);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  std::cout << "Wrote " << data.num_references() << " references to "
            << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace recon;

  std::string path;
  std::string algo = "depgraph";
  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo" && i + 1 < argc) return Demo(argv[++i]);
    if (arg == "--algo" && i + 1 < argc) {
      algo = argv[++i];
    } else if (arg == "--no-constraints") {
      options.constraints = false;
    } else if (arg == "--canopies") {
      options.use_canopies = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      char* end = nullptr;
      options.num_threads = static_cast<int>(std::strtol(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0' || options.num_threads < 0) {
        std::cerr << "--threads needs a count >= 0 (0 = all hardware "
                     "threads), got \"" << argv[i] << "\"\n";
        return 2;
      }
    } else if (arg == "--evidence" && i + 1 < argc) {
      const std::string level = argv[++i];
      if (level == "attr") options.evidence_level = EvidenceLevel::kAttrWise;
      else if (level == "ne") options.evidence_level = EvidenceLevel::kNameEmail;
      else if (level == "article") options.evidence_level = EvidenceLevel::kArticle;
      else if (level == "contact") options.evidence_level = EvidenceLevel::kContact;
      else {
        std::cerr << "unknown evidence level " << level << "\n";
        return 2;
      }
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: reconcile_cli [--algo depgraph|indepdec] "
                 "[--no-constraints] [--evidence attr|ne|article|contact] "
                 "[--threads N] <dataset file>\n"
                 "       reconcile_cli --demo <out file>\n";
    return 2;
  }

  StatusOr<Dataset> loaded = LoadDatasetFromFile(path);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }
  const Dataset& data = loaded.value();
  std::cout << "Loaded " << data.num_references() << " references, "
            << data.schema().num_classes() << " classes.\n";

  ReconcileResult result;
  if (algo == "indepdec") {
    const IndepDec reconciler(options);
    result = reconciler.Run(data);
  } else if (algo == "depgraph") {
    const Reconciler reconciler(options);
    result = reconciler.Run(data);
  } else if (algo == "fs") {
    FellegiSunterOptions fs_options;
    fs_options.blocking = options;
    const FellegiSunter reconciler(fs_options);
    result = reconciler.Run(data);
  } else {
    std::cerr << "unknown algorithm " << algo << "\n";
    return 2;
  }

  for (int c = 0; c < data.schema().num_classes(); ++c) {
    const int refs = static_cast<int>(data.ReferencesOfClass(c).size());
    if (refs == 0) continue;
    std::cout << data.schema().class_def(c).name << ": " << refs
              << " references -> " << result.NumPartitionsOfClass(data, c)
              << " partitions";
    if (data.NumEntitiesOfClass(c) > 0) {
      const PairMetrics m =
          EvaluateClass(data, result.cluster, c, options.num_threads);
      std::cout << "  (gold: " << m.num_entities << " entities, P="
                << m.precision << " R=" << m.recall << " F=" << m.f1 << ")";
    }
    std::cout << "\n";
  }
  std::cout << "Graph: " << result.stats.num_nodes << " nodes, "
            << result.stats.num_merges << " merges; build "
            << result.stats.build_seconds << "s solve "
            << result.stats.solve_seconds << "s\n";
  if (result.stats.num_solver_rounds > 0) {
    std::cout << "Solve: " << result.stats.num_solver_rounds
              << " wavefront rounds; score "
              << result.stats.solve_score_seconds << "s (parallel) commit "
              << result.stats.solve_commit_seconds << "s (serial); "
              << result.stats.num_score_hits << " hits / "
              << result.stats.num_serial_rescores << " re-scored\n";
  }
  return 0;
}
