// Developer tool: per-class IndepDec vs DepGraph quality on one PIM
// dataset. Usage: quality_check [A|B|C|D] [scale]

#include <cstdio>
#include <cstdlib>

#include "baseline/indep_dec.h"
#include "core/reconciler.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace recon;
  datagen::PimConfig config = datagen::PimConfigA();
  if (argc > 1) {
    switch (argv[1][0]) {
      case 'B': config = datagen::PimConfigB(); break;
      case 'C': config = datagen::PimConfigC(); break;
      case 'D': config = datagen::PimConfigD(); break;
      default: break;
    }
  }
  if (argc > 2) {
    const double scale = atof(argv[2]);
    if (scale > 0 && scale < 1) config = datagen::ScaleConfig(config, scale);
  }
  const Dataset data = datagen::GeneratePim(config);

  const IndepDec indep;
  const ReconcileResult ri = indep.Run(data);
  const Reconciler dep(ReconcilerOptions::DepGraph());
  const ReconcileResult rd = dep.Run(data);
  for (const char* cls : {"Person", "Article", "Venue"}) {
    const int id = data.schema().RequireClass(cls);
    const PairMetrics mi = EvaluateClass(data, ri.cluster, id);
    const PairMetrics md = EvaluateClass(data, rd.cluster, id);
    std::printf(
        "%-8s indep P=%.3f R=%.3f F=%.3f (par %d/%d)   "
        "dep P=%.3f R=%.3f F=%.3f (par %d)\n",
        cls, mi.precision, mi.recall, mi.f1, mi.num_partitions,
        mi.num_entities, md.precision, md.recall, md.f1, md.num_partitions);
  }
  std::printf("dep graph: %lld nodes, %lld edges, %lld merges, %lld folds, "
              "build %.2fs solve %.2fs\n",
              static_cast<long long>(rd.stats.num_nodes),
              static_cast<long long>(rd.stats.num_edges),
              static_cast<long long>(rd.stats.num_merges),
              static_cast<long long>(rd.stats.num_folds),
              rd.stats.build_seconds, rd.stats.solve_seconds);
  return 0;
}
