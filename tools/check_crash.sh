#!/usr/bin/env bash
# One-command crash-safety check for the durability layer (DESIGN.md §15):
#
#   1. configures and builds build-asan/ with
#      -DRECON_SANITIZE=address-undefined (shared with check_asan.sh),
#   2. runs the fault-injected crash sweep under ASan + UBSan — every
#      injected I/O fault index x fault kind (crash, torn write, EIO) x
#      thread count, with recovery byte-identity as the oracle — plus the
#      daemon-level smoke tests (SIGTERM drain, overload shedding),
#   3. soaks the real daemon: repeatedly acknowledges ingest batches over
#      HTTP, kill -9's the process mid-service, restarts it bare from
#      --data-dir, and asserts every acknowledged generation survived;
#      the final cycle drains via SIGTERM and must seal the WAL and
#      exit 0. The daemon runs under ASan the whole time.
#
# Usage: tools/check_crash.sh [asan_build_dir] [soak_cycles]
#   asan_build_dir  defaults to build-asan (created if missing)
#   soak_cycles     kill -9 cycles in step 3, defaults to 3

set -euo pipefail

ASAN_DIR="${1:-build-asan}"
SOAK_CYCLES="${2:-3}"

echo "== [1/3] configure + build ${ASAN_DIR} (-DRECON_SANITIZE=address-undefined)"
cmake -B "${ASAN_DIR}" -S . -DRECON_SANITIZE=address-undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${ASAN_DIR}" -j

echo
echo "== [2/3] fault-injected crash sweep under ASan + UBSan"
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}" \
  ctest --test-dir "${ASAN_DIR}" \
    -R 'RecoveryTest|ReconcileServeTest|HttpOverloadTest' \
    --output-on-failure

echo
echo "== [3/3] kill -9 soak: ${SOAK_CYCLES} crash/restart cycles of the live daemon"
SERVE="${ASAN_DIR}/tools/reconcile_serve"
DATA_DIR="$(mktemp -d /tmp/recon-crash-soak-XXXXXX)"
OUT="${DATA_DIR}/serve.out"
SERVE_PID=""

cleanup() {
  [[ -n "${SERVE_PID}" ]] && kill -9 "${SERVE_PID}" 2>/dev/null || true
  rm -rf "${DATA_DIR}"
}
trap cleanup EXIT

# Starts the daemon (demo dataset on the first boot, bare --data-dir
# restarts after) and waits for its "listening on port N" line. Sets
# SERVE_PID and PORT.
start_daemon() {
  local extra=("$@")
  : > "${OUT}"
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=0 ${ASAN_OPTIONS:-}" \
    "${SERVE}" --port 0 --threads 2 --data-dir "${DATA_DIR}" \
    --fsync every-record "${extra[@]}" >"${OUT}" 2>&1 &
  SERVE_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT="$(sed -n 's/^listening on port \([0-9]*\).*/\1/p' "${OUT}")"
    [[ -n "${PORT}" ]] && return 0
    if ! kill -0 "${SERVE_PID}" 2>/dev/null; then
      echo "FAILED: daemon died during startup:"; cat "${OUT}"; exit 1
    fi
    sleep 0.1
  done
  echo "FAILED: daemon never reported its port:"; cat "${OUT}"; exit 1
}

# One acknowledged (fsync'd, flush=true) ingest; prints the new generation.
ingest_one() {
  local name="$1"
  local body
  body="$(curl -sf -d '{"references": [{"class": "Person", "values":
    {"name": ["'"${name}"'"]}}], "flush": true}' \
    "localhost:${PORT}/ingest")" || {
    echo "FAILED: ingest of ${name} not acknowledged"; exit 1; }
  sed -n 's/.*"generation": *\([0-9]*\).*/\1/p' <<<"${body}"
}

stat_field() {
  curl -sf "localhost:${PORT}/stats" \
    | sed -n 's/.*"'"$1"'": *\([0-9a-z]*\).*/\1/p'
}

start_daemon --demo
ACKED=0
for cycle in $(seq 1 "${SOAK_CYCLES}"); do
  GEN="$(ingest_one "Crash Soak ${cycle}")"
  [[ "${GEN}" -gt "${ACKED}" ]] || {
    echo "FAILED: ingest did not advance the generation"; exit 1; }
  ACKED="${GEN}"
  kill -9 "${SERVE_PID}"
  wait "${SERVE_PID}" 2>/dev/null || true
  SERVE_PID=""

  start_daemon  # bare restart: state comes from --data-dir alone
  grep -q "^Recovered generation" "${OUT}" || {
    echo "FAILED: restart did not recover:"; cat "${OUT}"; exit 1; }
  DURABLE="$(stat_field durable_generation)"
  [[ "${DURABLE}" -ge "${ACKED}" ]] || {
    echo "FAILED: acked generation ${ACKED} lost (durable ${DURABLE})"; exit 1; }
  RECOVERED="$(stat_field recovered)"
  [[ "${RECOVERED}" == "true" ]] || {
    echo "FAILED: /stats does not report recovery"; exit 1; }
  echo "  cycle ${cycle}: acked generation ${ACKED} survived kill -9"
done

# Every soaked reference must still be queryable after the last recovery.
for cycle in $(seq 1 "${SOAK_CYCLES}"); do
  curl -sf -d '{"q0": {"query": "Crash Soak '"${cycle}"'", "type": "Person"}}' \
      "localhost:${PORT}/reconcile" | grep -q "Crash Soak ${cycle}" || {
    echo "FAILED: recovered state lost reference 'Crash Soak ${cycle}'"; exit 1; }
done

# Graceful drain: SIGTERM must seal the WAL and exit 0.
kill -TERM "${SERVE_PID}"
if ! wait "${SERVE_PID}"; then
  echo "FAILED: SIGTERM drain exited non-zero:"; cat "${OUT}"; exit 1
fi
SERVE_PID=""
grep -q "^sealed wal at generation" "${OUT}" || {
  echo "FAILED: graceful shutdown did not seal the WAL:"; cat "${OUT}"; exit 1; }

echo
echo "OK: crash sweep ASan-clean; ${SOAK_CYCLES} kill -9 cycles lost nothing; SIGTERM sealed."
