// Incremental reconciliation (the paper's §7 future work): a PIM system
// does not re-reconcile the whole desktop when mail arrives. This example
// reconciles an initial personal dataset, then streams additional
// "days" of references into the IncrementalReconciler, reporting how the
// partition evolves and what each batch cost.

#include <algorithm>
#include <iostream>

#include "core/incremental.h"
#include "datagen/pim_generator.h"
#include "eval/metrics.h"
#include "model/subset.h"
#include "util/timer.h"

int main() {
  using namespace recon;

  datagen::PimConfig config = datagen::PimConfigA();
  config = datagen::ScaleConfig(config, 0.10);
  const Dataset full = datagen::GeneratePim(config);
  const int person = full.schema().RequireClass("Person");

  // The first 40% of the references form the already-reconciled state;
  // the rest arrives in four batches. (PIM generator references are
  // grouped by extraction unit — message or BibTeX entry — and
  // association links never cross units, so prefix cuts are safe.)
  const RefId initial_cut = full.num_references() * 4 / 10;
  const Dataset head =
      FilterDataset(full, [&](RefId id) { return id < initial_cut; });

  ReconcilerOptions options = ReconcilerOptions::DepGraph();
  options.premerge_equal_emails = false;  // Batch-only optimization.
  IncrementalReconciler reconciler(head, options);

  Timer timer;
  reconciler.Flush();
  std::cout << "Initial load: " << head.num_references() << " references, "
            << reconciler.result().stats.num_merges << " merges, "
            << timer.ElapsedMillis() << " ms\n";

  const int num_batches = 4;
  const RefId remaining = full.num_references() - initial_cut;
  for (int batch = 0; batch < num_batches; ++batch) {
    const RefId from = initial_cut + remaining * batch / num_batches;
    const RefId to = initial_cut + remaining * (batch + 1) / num_batches;
    for (RefId id = from; id < to; ++id) {
      const Reference& ref = full.reference(id);
      Reference copy(ref.class_id(), ref.num_attributes());
      for (int attr = 0; attr < ref.num_attributes(); ++attr) {
        for (const auto& v : ref.atomic_values(attr)) {
          copy.AddAtomicValue(attr, v);
        }
        for (const RefId target : ref.associations(attr)) {
          copy.AddAssociation(attr, target);
        }
      }
      reconciler.AddReference(std::move(copy), full.gold_entity(id),
                              full.provenance(id));
    }
    timer.Restart();
    reconciler.Flush();
    const double ms = timer.ElapsedMillis();
    const PairMetrics metrics = EvaluateClass(
        reconciler.dataset(), reconciler.clusters(), person);
    std::cout << "Batch " << (batch + 1) << ": +" << (to - from)
              << " refs in " << ms << " ms; persons now "
              << metrics.num_partitions << " partitions / "
              << metrics.num_entities << " entities (P=" << metrics.precision
              << " R=" << metrics.recall << ")\n";
  }

  std::cout << "\nFinal stats: "
            << reconciler.result().stats.num_nodes << " graph nodes, "
            << reconciler.result().stats.num_merges << " merges, "
            << reconciler.result().stats.num_folds << " enrichment folds.\n";
  return 0;
}
