// Quickstart: the paper's running example (Figure 1) end to end.
//
// Builds the eleven references of Figure 1(b) — two BibTeX entries for the
// same article plus three email-derived person references — reconciles them
// with DepGraph, and prints the resulting partitions, which should match
// Figure 1(c):
//   {a1, a2}, {p1, p4}, {p2, p5, p8, p9}, {p3, p6, p7}, {c1, c2}.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/reconciler.h"
#include "model/dataset.h"

namespace {

using recon::Dataset;
using recon::RefId;

struct Refs {
  RefId a1, a2;
  RefId p[9];
  RefId c1, c2;
};

// Builds Figure 1(b). Gold entity ids: article 0; persons 1 (Epstein),
// 2 (Stonebraker), 3 (Wong); venue 4.
Refs BuildFigure1(Dataset& data) {
  const recon::Schema& schema = data.schema();
  const int kPerson = schema.RequireClass("Person");
  const int kArticle = schema.RequireClass("Article");
  const int kVenue = schema.RequireClass("Venue");
  const int kName = schema.RequireAttribute(kPerson, "name");
  const int kEmail = schema.RequireAttribute(kPerson, "email");
  const int kCoAuthor = schema.RequireAttribute(kPerson, "coAuthor");
  const int kContact = schema.RequireAttribute(kPerson, "emailContact");
  const int kTitle = schema.RequireAttribute(kArticle, "title");
  const int kPages = schema.RequireAttribute(kArticle, "pages");
  const int kAuthors = schema.RequireAttribute(kArticle, "authoredBy");
  const int kPublishedIn = schema.RequireAttribute(kArticle, "publishedIn");
  const int kVenueName = schema.RequireAttribute(kVenue, "name");
  const int kVenueYear = schema.RequireAttribute(kVenue, "year");
  const int kVenueLocation = schema.RequireAttribute(kVenue, "location");

  Refs r;
  auto person = [&](int gold, const std::string& name,
                    const std::string& email) {
    const RefId id = data.NewReference(kPerson, gold);
    if (!name.empty()) data.mutable_reference(id).AddAtomicValue(kName, name);
    if (!email.empty()) {
      data.mutable_reference(id).AddAtomicValue(kEmail, email);
    }
    return id;
  };

  // BibTeX item 1: p1, p2, p3, c1, a1.
  r.p[0] = person(1, "Robert S. Epstein", "");
  r.p[1] = person(2, "Michael Stonebraker", "");
  r.p[2] = person(3, "Eugene Wong", "");
  r.c1 = data.NewReference(kVenue, 4);
  data.mutable_reference(r.c1).AddAtomicValue(
      kVenueName, "ACM Conference on Management of Data");
  data.mutable_reference(r.c1).AddAtomicValue(kVenueYear, "1978");
  data.mutable_reference(r.c1).AddAtomicValue(kVenueLocation,
                                              "Austin, Texas");
  r.a1 = data.NewReference(kArticle, 0);
  {
    recon::Reference& a1 = data.mutable_reference(r.a1);
    a1.AddAtomicValue(
        kTitle, "Distributed query processing in a relational data base system");
    a1.AddAtomicValue(kPages, "169-180");
    for (int i = 0; i < 3; ++i) a1.AddAssociation(kAuthors, r.p[i]);
    a1.AddAssociation(kPublishedIn, r.c1);
  }

  // BibTeX item 2: p4, p5, p6, c2, a2.
  r.p[3] = person(1, "Epstein, R.S.", "");
  r.p[4] = person(2, "Stonebraker, M.", "");
  r.p[5] = person(3, "Wong, E.", "");
  r.c2 = data.NewReference(kVenue, 4);
  data.mutable_reference(r.c2).AddAtomicValue(kVenueName, "ACM SIGMOD");
  data.mutable_reference(r.c2).AddAtomicValue(kVenueYear, "1978");
  r.a2 = data.NewReference(kArticle, 0);
  {
    recon::Reference& a2 = data.mutable_reference(r.a2);
    a2.AddAtomicValue(
        kTitle, "Distributed query processing in a relational data base system");
    a2.AddAtomicValue(kPages, "169-180");
    for (int i = 3; i < 6; ++i) a2.AddAssociation(kAuthors, r.p[i]);
    a2.AddAssociation(kPublishedIn, r.c2);
  }
  // CoAuthor links within each bibtex item.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      data.mutable_reference(r.p[i]).AddAssociation(kCoAuthor, r.p[j]);
      data.mutable_reference(r.p[i + 3]).AddAssociation(kCoAuthor,
                                                        r.p[j + 3]);
    }
  }

  // Email-derived references: p7 (Eugene Wong), p8 (address only), p9
  // ("mike" with Stonebraker's address).
  r.p[6] = person(3, "Eugene Wong", "eugene@berkeley.edu");
  r.p[7] = person(2, "", "stonebraker@csail.mit.edu");
  r.p[8] = person(2, "mike", "stonebraker@csail.mit.edu");
  data.mutable_reference(r.p[6]).AddAssociation(kContact, r.p[7]);
  data.mutable_reference(r.p[7]).AddAssociation(kContact, r.p[6]);
  return r;
}

std::string NameOf(const Refs& r, RefId id) {
  if (id == r.a1) return "a1";
  if (id == r.a2) return "a2";
  if (id == r.c1) return "c1";
  if (id == r.c2) return "c2";
  for (int i = 0; i < 9; ++i) {
    if (id == r.p[i]) return "p" + std::to_string(i + 1);
  }
  return "r" + std::to_string(id);
}

}  // namespace

int main() {
  Dataset data(recon::BuildPimSchema());
  const Refs refs = BuildFigure1(data);

  recon::Reconciler reconciler(recon::ReconcilerOptions::DepGraph());
  const recon::ReconcileResult result = reconciler.Run(data);

  std::cout << "Reconciliation of the paper's Figure 1 references:\n";
  std::map<int, std::vector<std::string>> partitions;
  for (RefId id = 0; id < data.num_references(); ++id) {
    partitions[result.cluster[id]].push_back(NameOf(refs, id));
  }
  for (const auto& [rep, members] : partitions) {
    std::cout << "  {";
    for (size_t i = 0; i < members.size(); ++i) {
      std::cout << (i ? ", " : "") << members[i];
    }
    std::cout << "}\n";
  }
  std::cout << "\nGraph: " << result.stats.num_nodes << " nodes, "
            << result.stats.num_edges << " edges, "
            << result.stats.num_merges << " merges, "
            << result.stats.num_folds << " enrichment folds.\n";
  std::cout << "Expected (Figure 1c): {a1, a2} {p1, p4} {p2, p5, p8, p9} "
               "{p3, p6, p7} {c1, c2}\n";
  return 0;
}
