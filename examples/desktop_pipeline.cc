// The full desktop pipeline, end to end on raw text: an mbox and a .bib
// file go through real parsers and the extractor into references, which
// DepGraph reconciles. This is the complete loop the paper's PIM system
// (Semex) runs: sources -> extraction -> reconciliation -> browsing.

#include <iostream>
#include <set>
#include <string>

#include "core/reconciler.h"
#include "eval/metrics.h"
#include "extract/extractor.h"

int main() {
  using namespace recon;

  // A small hand-written desktop: three messages and two BibTeX entries
  // about the paper's running example, plus unrelated noise.
  const std::string mbox =
      "From x\n"
      "From: \"Eugene Wong\" <eugene@berkeley.edu>\n"
      "To: <stonebraker@csail.mit.edu>\n"
      "Subject: draft of the distributed QP paper\n"
      "\n"
      "From x\n"
      "From: mike <stonebraker@csail.mit.edu>\n"
      "To: \"Eugene Wong\" <eugene@berkeley.edu>, \"Jim Gray\" <gray@ibm.com>\n"
      "Subject: Re: draft\n"
      "\n"
      "From x\n"
      "From: \"Gray, J.\" <gray@ibm.com>\n"
      "To: <stonebraker@csail.mit.edu>\n"
      "Subject: transactions\n"
      "\n";

  const std::string bibtex = R"(
@inproceedings{epstein78,
  author    = {Robert S. Epstein and Michael Stonebraker and Eugene Wong},
  title     = {Distributed query processing in a relational data base system},
  booktitle = {ACM Conference on Management of Data},
  year      = 1978,
  pages     = {169--180},
  address   = {Austin, Texas},
}
@inproceedings{epstein78b,
  author    = {Epstein, R.S. and Stonebraker, M. and Wong, E.},
  title     = {Distributed query processing in a relational data base system},
  booktitle = {ACM SIGMOD},
  year      = 1978,
  pages     = {169--180},
}
)";

  extract::Extractor extractor;
  const int from_mail = extractor.AddMbox(mbox);
  const int from_bib = extractor.AddBibtexFile(bibtex);
  const Dataset data = extractor.TakeDataset();

  std::cout << "Extracted " << from_mail << " references from email and "
            << from_bib << " from BibTeX (" << data.num_references()
            << " total).\n\n";

  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult result = reconciler.Run(data);

  // Print the reconciled persons with their pooled identities.
  const Schema& s = data.schema();
  const int person = s.RequireClass("Person");
  const int name = s.RequireAttribute(person, "name");
  const int email = s.RequireAttribute(person, "email");
  std::cout << "Reconciled persons:\n";
  for (const auto& partition : result.PartitionsOfClass(data, person)) {
    std::set<std::string> names;
    std::set<std::string> emails;
    for (const RefId id : partition) {
      for (const auto& v : data.reference(id).atomic_values(name)) {
        names.insert(v);
      }
      for (const auto& v : data.reference(id).atomic_values(email)) {
        emails.insert(v);
      }
    }
    std::cout << "  [" << partition.size() << " refs]";
    for (const auto& n : names) std::cout << " \"" << n << "\"";
    for (const auto& e : emails) std::cout << " <" << e << ">";
    std::cout << "\n";
  }

  const int venue = s.RequireClass("Venue");
  std::cout << "\nVenue partitions: "
            << result.NumPartitionsOfClass(data, venue)
            << " (the two spellings of SIGMOD 1978 should be one)\n";
  const int article = s.RequireClass("Article");
  std::cout << "Article partitions: "
            << result.NumPartitionsOfClass(data, article) << "\n";
  return 0;
}
