// PIM browser: the paper's motivating application. Generates a personal
// information space, reconciles it with DepGraph, and then answers
// association-browsing queries over the *reconciled* view: a person's
// email addresses, name variants, co-authors, and publications — the
// experience a PIM system like Semex would offer.

#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/reconciler.h"
#include "datagen/pim_generator.h"

namespace {

using recon::Dataset;
using recon::RefId;

/// A reconciled person: all values pooled across the partition.
struct PersonView {
  std::set<std::string> names;
  std::set<std::string> emails;
  std::set<int> coauthor_clusters;
  std::set<int> article_clusters;
  int num_references = 0;
};

}  // namespace

int main() {
  // A small personal dataset: a few hundred entities, a few thousand refs.
  recon::datagen::PimConfig config = recon::datagen::PimConfigA();
  config = recon::datagen::ScaleConfig(config, 0.08);
  const Dataset data = recon::datagen::GeneratePim(config);

  const recon::Schema& schema = data.schema();
  const int kPerson = schema.RequireClass("Person");
  const int kArticle = schema.RequireClass("Article");
  const int kName = schema.RequireAttribute(kPerson, "name");
  const int kEmail = schema.RequireAttribute(kPerson, "email");
  const int kCoAuthor = schema.RequireAttribute(kPerson, "coAuthor");
  const int kAuthors = schema.RequireAttribute(kArticle, "authoredBy");

  std::cout << "Reconciling " << data.num_references()
            << " references extracted from simulated email and BibTeX...\n";
  const recon::Reconciler reconciler(recon::ReconcilerOptions::DepGraph());
  const recon::ReconcileResult result = reconciler.Run(data);

  // Build the browsable person views.
  std::map<int, PersonView> persons;
  for (RefId id = 0; id < data.num_references(); ++id) {
    const recon::Reference& ref = data.reference(id);
    if (ref.class_id() != kPerson) continue;
    PersonView& view = persons[result.cluster[id]];
    ++view.num_references;
    for (const auto& name : ref.atomic_values(kName)) view.names.insert(name);
    for (const auto& email : ref.atomic_values(kEmail)) {
      view.emails.insert(email);
    }
    for (const RefId co : ref.associations(kCoAuthor)) {
      view.coauthor_clusters.insert(result.cluster[co]);
    }
  }
  for (RefId id = 0; id < data.num_references(); ++id) {
    const recon::Reference& ref = data.reference(id);
    if (ref.class_id() != kArticle) continue;
    for (const RefId author : ref.associations(kAuthors)) {
      persons[result.cluster[author]].article_clusters.insert(
          result.cluster[id]);
    }
  }

  std::cout << "Found " << persons.size() << " distinct persons.\n\n";

  // Show the three most-referenced persons, Semex style.
  std::vector<std::pair<int, int>> by_popularity;
  for (const auto& [cluster, view] : persons) {
    by_popularity.emplace_back(view.num_references, cluster);
  }
  std::sort(by_popularity.rbegin(), by_popularity.rend());
  const int show = std::min<int>(3, static_cast<int>(by_popularity.size()));
  for (int i = 0; i < show; ++i) {
    const PersonView& view = persons[by_popularity[i].second];
    std::cout << "Person #" << (i + 1) << "  (" << view.num_references
              << " references reconciled)\n";
    std::cout << "  Known as:";
    int count = 0;
    for (const auto& name : view.names) {
      if (count++ == 6) { std::cout << " ..."; break; }
      std::cout << " \"" << name << "\"";
    }
    std::cout << "\n  Addresses:";
    for (const auto& email : view.emails) std::cout << " <" << email << ">";
    std::cout << "\n  Co-authors: " << view.coauthor_clusters.size()
              << " persons;  publications: " << view.article_clusters.size()
              << "\n\n";
  }
  std::cout << "Graph: " << result.stats.num_nodes << " nodes, "
            << result.stats.num_merges << " merges, build "
            << result.stats.build_seconds << "s, solve "
            << result.stats.solve_seconds << "s.\n";
  return 0;
}
