// Citation de-duplication: the Citeseer/Cora scenario of the paper's
// introduction. Generates a noisy citation corpus, reconciles it, and
// prints a cleaned bibliography with citation counts per paper — including
// the venue consolidation that single-class approaches miss.

#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/reconciler.h"
#include "datagen/cora_generator.h"
#include "eval/metrics.h"

int main() {
  using namespace recon;

  datagen::CoraConfig config;
  config.num_papers = 40;
  config.num_citations = 420;
  const Dataset data = datagen::GenerateCora(config);

  const Schema& schema = data.schema();
  const int kArticle = schema.RequireClass("Article");
  const int kVenue = schema.RequireClass("Venue");
  const int kPerson = schema.RequireClass("Person");
  const int kTitle = schema.RequireAttribute(kArticle, "title");
  const int kPublishedIn = schema.RequireAttribute(kArticle, "publishedIn");
  const int kVenueName = schema.RequireAttribute(kVenue, "name");

  std::cout << "Reconciling " << data.num_references()
            << " references from " << config.num_citations
            << " noisy citations of " << config.num_papers
            << " papers...\n\n";
  const Reconciler reconciler(ReconcilerOptions::DepGraph());
  const ReconcileResult result = reconciler.Run(data);

  // Cleaned bibliography: one entry per article cluster.
  struct Entry {
    std::set<std::string> titles;
    std::set<std::string> venue_names;
    int citations = 0;
  };
  std::map<int, Entry> bibliography;
  for (RefId id = 0; id < data.num_references(); ++id) {
    const Reference& ref = data.reference(id);
    if (ref.class_id() != kArticle) continue;
    Entry& entry = bibliography[result.cluster[id]];
    ++entry.citations;
    for (const auto& title : ref.atomic_values(kTitle)) {
      entry.titles.insert(title);
    }
    for (const RefId venue : ref.associations(kPublishedIn)) {
      for (const auto& name :
           data.reference(venue).atomic_values(kVenueName)) {
        entry.venue_names.insert(name);
      }
    }
  }

  std::vector<std::pair<int, int>> ranked;  // (citations, cluster)
  for (const auto& [cluster, entry] : bibliography) {
    ranked.emplace_back(entry.citations, cluster);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::cout << "Cleaned bibliography: " << bibliography.size()
            << " distinct papers (top 5 by citation count):\n";
  for (int i = 0; i < std::min<int>(5, static_cast<int>(ranked.size()));
       ++i) {
    const Entry& entry = bibliography[ranked[i].second];
    std::cout << "  [" << entry.citations << " citations] "
              << *entry.titles.begin() << "\n";
    if (entry.titles.size() > 1) {
      std::cout << "      (+" << entry.titles.size() - 1
                << " title variants reconciled)\n";
    }
    std::cout << "      venue mentions:";
    int count = 0;
    for (const auto& v : entry.venue_names) {
      if (count++ == 4) { std::cout << " ..."; break; }
      std::cout << " \"" << v << "\"";
    }
    std::cout << "\n";
  }

  std::cout << "\nAccuracy against ground truth:\n";
  for (const auto& [name, class_id] :
       std::map<std::string, int>{{"Person", kPerson},
                                  {"Article", kArticle},
                                  {"Venue", kVenue}}) {
    const PairMetrics m = EvaluateClass(data, result.cluster, class_id);
    std::cout << "  " << name << ": P=" << m.precision << " R=" << m.recall
              << " F=" << m.f1 << " (" << m.num_partitions
              << " partitions / " << m.num_entities << " entities)\n";
  }
  return 0;
}
